// Protocol-level tests for Marlin driven through the deterministic bus
// harness: the two-phase normal case, locking, the rank guards, and every
// view-change case from the paper (happy path; V1 with the virtual block
// winning and losing; V2; V3; replica rules R1/R2/R3), plus adversarial
// message injection.
#include <gtest/gtest.h>

#include <set>

#include "consensus/txpool.h"
#include "protocol_harness.h"

namespace marlin::consensus::testing {
namespace {

using types::Block;
using types::BlockRef;
using types::Hash256;
using types::Justify;
using types::MsgKind;
using types::Phase;
using types::QcType;
using types::QuorumCert;

constexpr const char* kDomain = "marlin";

/// Builds a fully-signed QC over a crafted block (test-side forgery using
/// the real suite keys — models Byzantine certificate reuse).
QuorumCert forge_qc(const crypto::SignatureSuite& suite, QcType type,
                    ViewNumber view, const Block& b,
                    std::vector<ReplicaId> signers) {
  QuorumCert qc;
  qc.type = type;
  qc.view = view;
  qc.block_hash = b.hash();
  qc.block_view = b.view;
  qc.height = b.height;
  qc.pview = b.parent_view;
  qc.virtual_block = b.virtual_block;
  const Hash256 digest = qc.signed_digest(kDomain);
  std::vector<crypto::PartialSig> parts;
  for (ReplicaId r : signers) {
    parts.push_back({r, suite.signer(r)->sign(digest.view())});
  }
  auto group = crypto::SigGroup::combine(
      parts, static_cast<std::uint32_t>(signers.size()));
  qc.sigs = std::move(*group);
  return qc;
}

types::ViewChangeMsg forge_view_change(const crypto::SignatureSuite& suite,
                                       ReplicaId sender, ViewNumber view,
                                       const BlockRef& lb, Justify high_qc) {
  types::ViewChangeMsg m;
  m.view = view;
  m.last_voted = lb;
  m.high_qc = std::move(high_qc);
  const Hash256 digest =
      types::vote_digest(kDomain, QcType::kPrepare, view, lb.hash, lb.view,
                         lb.height, lb.pview, lb.virtual_block);
  m.parsig = {sender, suite.signer(sender)->sign(digest.view())};
  return m;
}

Block make_child(const Block& parent, ViewNumber view, Justify justify,
                 std::vector<types::Operation> ops = {}) {
  Block b;
  b.parent_link = parent.hash();
  b.parent_view = parent.view;
  b.view = view;
  b.height = parent.height + 1;
  b.ops = std::move(ops);
  b.justify = std::move(justify);
  return b;
}

// ---------------------------------------------------------------------------
// Normal case
// ---------------------------------------------------------------------------

TEST(MarlinNormal, CommitsAcrossAllReplicas) {
  ProtocolHarness h(Kind::kMarlin);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  for (ReplicaId r = 0; r < h.n(); ++r) {
    ASSERT_EQ(h.delivered(r).size(), 1u) << "replica " << r;
    ASSERT_EQ(h.delivered(r)[0].ops.size(), 1u);
    EXPECT_EQ(h.delivered(r)[0].ops[0].request, 1u);
    EXPECT_EQ(h.replica(r).committed_height(), 1u);
  }
  EXPECT_TRUE(h.all_consistent());
}

TEST(MarlinNormal, TwoVoteRoundsOnly) {
  // Count distinct QC-notice phases: Marlin must emit COMMIT and DECIDE
  // notices but never PRE-COMMIT (HotStuff's third round).
  ProtocolHarness h(Kind::kMarlin);
  std::set<Phase> phases;
  h.set_drop([&](const BusMessage& m) {
    if (auto notice = peek<types::QcNoticeMsg>(m, MsgKind::kQcNotice)) {
      phases.insert(notice->phase);
    }
    return false;
  });
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  EXPECT_TRUE(phases.count(Phase::kCommit));
  EXPECT_TRUE(phases.count(Phase::kDecide));
  EXPECT_FALSE(phases.count(Phase::kPreCommit));
}

TEST(MarlinNormal, PipelinedBlocksInOneView) {
  ProtocolHarness h(Kind::kMarlin);
  h.start_all();
  for (RequestId i = 1; i <= 5; ++i) {
    h.submit_to_all(op_of(1, i));
    h.deliver_all();
  }
  for (ReplicaId r = 0; r < h.n(); ++r) {
    EXPECT_EQ(h.replica(r).committed_height(), 5u);
    EXPECT_EQ(h.replica(r).current_view(), 1u);  // no view change happened
  }
  EXPECT_TRUE(h.all_consistent());
}

TEST(MarlinNormal, ReplicasLockOnPrepareQc) {
  ProtocolHarness h(Kind::kMarlin);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  for (ReplicaId r = 0; r < h.n(); ++r) {
    const QuorumCert& locked = h.marlin(r).locked_qc();
    EXPECT_EQ(locked.view, 1u);
    EXPECT_EQ(locked.height, 1u);
    EXPECT_EQ(locked.type, QcType::kPrepare);
  }
}

TEST(MarlinNormal, LastVotedTracksHighestBlock) {
  ProtocolHarness h(Kind::kMarlin);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  h.submit_to_all(op_of(1, 2));
  h.deliver_all();
  for (ReplicaId r = 0; r < h.n(); ++r) {
    EXPECT_EQ(h.marlin(r).last_voted().height, 2u);
    EXPECT_EQ(h.marlin(r).last_voted().view, 1u);
  }
}

TEST(MarlinNormal, ProposalFromNonLeaderIgnored) {
  ProtocolHarness h(Kind::kMarlin);
  h.start_all();
  h.deliver_all();

  // Replica 3 (not the view-1 leader) forges a valid-looking proposal.
  Block genesis = Block::genesis();
  Block b = make_child(genesis, 1,
                       Justify{QuorumCert::genesis(genesis.hash()), {}},
                       {op_of(9, 9)});
  types::ProposalMsg msg;
  msg.phase = Phase::kPrepare;
  msg.view = 1;
  msg.entries.push_back({b, b.justify});

  std::size_t votes = 0;
  h.set_drop([&](const BusMessage& m) {
    if (m.envelope.kind == MsgKind::kVote) ++votes;
    return false;
  });
  for (ReplicaId r = 0; r < h.n(); ++r) {
    h.post(3, r, types::make_envelope(MsgKind::kProposal, msg));
  }
  h.deliver_all();
  EXPECT_EQ(votes, 0u);
}

TEST(MarlinNormal, ProposalWithInvalidQcIgnored) {
  ProtocolHarness h(Kind::kMarlin);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();  // height 1 committed

  // Leader-impersonating proposal justified by a corrupted-signature QC
  // over a block no honest quorum ever certified.
  const Block* tip = h.replica(0).store().get(h.replica(0).committed_hash());
  ASSERT_NE(tip, nullptr);
  Block fake = make_child(*tip, 1, Justify{}, {op_of(4, 4)});
  QuorumCert bad = forge_qc(h.suite(), QcType::kPrepare, 1, fake, {0, 2, 3});
  bad.sigs.parts[0].sig[5] ^= 0x01;
  Block b = make_child(fake, 1, Justify{bad, {}}, {op_of(5, 5)});
  types::ProposalMsg msg;
  msg.phase = Phase::kPrepare;
  msg.view = 1;
  msg.entries.push_back({b, b.justify});

  std::size_t votes = 0;
  h.set_drop([&](const BusMessage& m) {
    if (m.envelope.kind == MsgKind::kVote) ++votes;
    return false;
  });
  h.post(1, 0, types::make_envelope(MsgKind::kProposal, msg));
  h.deliver_all();
  EXPECT_EQ(votes, 0u);
}

TEST(MarlinNormal, StaleViewMessagesIgnored) {
  ProtocolHarness h(Kind::kMarlin);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  h.timeout_all();  // view 2
  h.deliver_all();

  // A view-1 commit notice (old leader 1) arrives late: no one votes.
  const Block* tip = h.replica(0).store().get(h.replica(0).committed_hash());
  QuorumCert qc = forge_qc(h.suite(), QcType::kPrepare, 1, *tip, {0, 1, 2});
  types::QcNoticeMsg notice{Phase::kCommit, 1, qc, {}};
  std::size_t votes = 0;
  h.set_drop([&](const BusMessage& m) {
    if (m.envelope.kind == MsgKind::kVote) ++votes;
    return false;
  });
  h.post(1, 0, types::make_envelope(MsgKind::kQcNotice, notice));
  h.deliver_all();
  EXPECT_EQ(votes, 0u);
}

TEST(MarlinNormal, DuplicateDecideIsIdempotent) {
  ProtocolHarness h(Kind::kMarlin);
  types::QcNoticeMsg decide;
  bool captured = false;
  h.set_drop([&](const BusMessage& m) {
    if (auto n = peek<types::QcNoticeMsg>(m, MsgKind::kQcNotice)) {
      if (n->phase == Phase::kDecide && !captured) {
        decide = *n;
        captured = true;
      }
    }
    return false;
  });
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  ASSERT_TRUE(captured);
  const auto committed = h.replica(0).committed_blocks();
  h.post(1, 0, types::make_envelope(MsgKind::kQcNotice, decide));
  h.deliver_all();
  EXPECT_EQ(h.replica(0).committed_blocks(), committed);
  EXPECT_FALSE(h.replica(0).safety_violated());
}

TEST(MarlinNormal, ForkingSecondProposalSameHeightRejected) {
  ProtocolHarness h(Kind::kMarlin);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();

  // The leader equivocates: a second, different block at the same height
  // justified by the same (genuine) justify. Replicas already voted at
  // that height — the block-rank guard must reject it.
  const Block* committed =
      h.replica(0).store().get(h.replica(0).committed_hash());
  const Block* genesis =
      h.replica(0).store().get(h.replica(0).store().genesis_hash());
  ASSERT_TRUE(committed->justify.qc.has_value());
  Block fork = make_child(*genesis, 1, committed->justify, {op_of(7, 7)});

  types::ProposalMsg msg;
  msg.phase = Phase::kPrepare;
  msg.view = 1;
  msg.entries.push_back({fork, fork.justify});
  std::size_t votes = 0;
  h.set_drop([&](const BusMessage& m) {
    if (m.envelope.kind == MsgKind::kVote) ++votes;
    return false;
  });
  h.post(1, 0, types::make_envelope(MsgKind::kProposal, msg));
  h.post(1, 2, types::make_envelope(MsgKind::kProposal, msg));
  h.deliver_all();
  EXPECT_EQ(votes, 0u);
  EXPECT_TRUE(h.all_consistent());
}

// ---------------------------------------------------------------------------
// View change: happy path
// ---------------------------------------------------------------------------

TEST(MarlinViewChange, HappyPathSkipsPrePrepare) {
  ProtocolHarness h(Kind::kMarlin);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();

  std::size_t preprepare_proposals = 0;
  h.set_drop([&](const BusMessage& m) {
    if (auto p = peek<types::ProposalMsg>(m, MsgKind::kProposal)) {
      if (p->phase == Phase::kPrePrepare) ++preprepare_proposals;
    }
    return false;
  });

  h.submit_to_all(op_of(1, 2));  // pending work for the new leader
  h.timeout_all();               // everyone moves to view 2 (leader 2)
  h.deliver_all();

  EXPECT_EQ(h.marlin(2).happy_view_changes(), 1u);
  EXPECT_EQ(h.marlin(2).unhappy_view_changes(), 0u);
  EXPECT_EQ(preprepare_proposals, 0u);
  for (ReplicaId r = 0; r < h.n(); ++r) {
    EXPECT_EQ(h.replica(r).current_view(), 2u);
    EXPECT_EQ(h.replica(r).committed_height(), 2u);
  }
  EXPECT_TRUE(h.all_consistent());
}

TEST(MarlinViewChange, HappyPathFromGenesis) {
  // View change before anything ever committed: all lb = genesis.
  ProtocolHarness h(Kind::kMarlin);
  h.start_all();
  h.deliver_all();
  h.submit_to_all(op_of(1, 1));
  h.timeout_all();
  h.deliver_all();
  EXPECT_EQ(h.marlin(2).happy_view_changes(), 1u);
  for (ReplicaId r = 0; r < h.n(); ++r) {
    EXPECT_EQ(h.replica(r).committed_height(), 1u);
  }
  EXPECT_TRUE(h.all_consistent());
}

TEST(MarlinViewChange, SuccessiveViewChanges) {
  ProtocolHarness h(Kind::kMarlin);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  for (int round = 0; round < 4; ++round) {
    h.submit_to_all(op_of(1, 2 + round));
    h.timeout_all();
    h.deliver_all();
  }
  for (ReplicaId r = 0; r < h.n(); ++r) {
    EXPECT_EQ(h.replica(r).current_view(), 5u);
    EXPECT_EQ(h.replica(r).committed_height(), 5u);
  }
  EXPECT_TRUE(h.all_consistent());
}

// ---------------------------------------------------------------------------
// View change: unhappy paths
// ---------------------------------------------------------------------------

TEST(MarlinViewChange, UnhappyV2SingleProposal) {
  ReplicaConfig cfg;
  cfg.disable_happy_path = true;
  ProtocolHarness h(Kind::kMarlin, 1, cfg);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();

  std::size_t preprepare_entries = 0;
  h.set_drop([&](const BusMessage& m) {
    if (auto p = peek<types::ProposalMsg>(m, MsgKind::kProposal)) {
      if (p->phase == Phase::kPrePrepare && m.to == 0) {
        preprepare_entries = p->entries.size();
      }
    }
    return false;
  });

  h.submit_to_all(op_of(1, 2));
  h.timeout_all();
  h.deliver_all();

  EXPECT_EQ(h.marlin(2).unhappy_view_changes(), 1u);
  // All lb identical and equal to block(highQC): Case V2 — one proposal.
  EXPECT_EQ(preprepare_entries, 1u);
  for (ReplicaId r = 0; r < h.n(); ++r) {
    EXPECT_EQ(h.replica(r).committed_height(), 2u);
  }
  EXPECT_TRUE(h.all_consistent());
}

TEST(MarlinViewChange, UnhappyV1ProposesShadowPair) {
  // Some replica voted past the leader's snapshot: the leader must propose
  // a normal block AND a virtual block sharing the op batch.
  ReplicaConfig cfg;
  cfg.disable_happy_path = true;
  ProtocolHarness h(Kind::kMarlin, 1, cfg);

  // Phase 1: commit block 1, then propose block 2 but suppress the COMMIT
  // notices so nobody's highQC advances to prepareQC(b2).
  bool suppress_commit_h2 = false;
  h.set_drop([&](const BusMessage& m) {
    if (!suppress_commit_h2) return false;
    if (auto n = peek<types::QcNoticeMsg>(m, MsgKind::kQcNotice)) {
      return (n->phase == Phase::kCommit || n->phase == Phase::kDecide) &&
             n->qc.height == 2;
    }
    return false;
  });

  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  suppress_commit_h2 = true;
  h.submit_to_all(op_of(1, 2));
  h.deliver_all();
  // Everyone voted b2 (lb = height 2) but highQC stayed at prepareQC(h1).
  for (ReplicaId r = 0; r < h.n(); ++r) {
    if (r == 1) continue;  // the leader formed prepareQC(b2) itself
    EXPECT_EQ(h.marlin(r).last_voted().height, 2u);
    EXPECT_EQ(h.marlin(r).high_qc().qc->height, 1u);
  }

  // Phase 2: old leader 1 goes silent; view 2 with leader 2. Its snapshot
  // {0, 2, 3} has highQC at height 1 but lb at height 2 → Case V1.
  h.crash(1);
  std::size_t shadow_entries = 0;
  bool has_virtual = false;
  std::vector<types::Operation> ops_normal, ops_virtual;
  h.set_drop([&](const BusMessage& m) {
    if (auto p = peek<types::ProposalMsg>(m, MsgKind::kProposal)) {
      if (p->phase == Phase::kPrePrepare && m.to == 0) {
        shadow_entries = p->entries.size();
        for (const auto& e : p->entries) {
          if (e.block.virtual_block) {
            has_virtual = true;
            ops_virtual = e.block.ops;
          } else {
            ops_normal = e.block.ops;
          }
        }
      }
    }
    return false;
  });
  h.submit_to_all(op_of(1, 3));
  h.timeout(0);
  h.timeout(2);
  h.timeout(3);
  h.deliver_all();

  EXPECT_EQ(h.marlin(2).unhappy_view_changes(), 1u);
  EXPECT_EQ(shadow_entries, 2u);
  EXPECT_TRUE(has_virtual);
  EXPECT_EQ(ops_normal, ops_virtual);  // shadow blocks share the batch

  // The view resolves and the cluster keeps committing, consistently.
  for (ReplicaId r : {0u, 2u, 3u}) {
    EXPECT_GE(h.replica(r).committed_height(), 2u) << "replica " << r;
  }
  EXPECT_TRUE(h.all_consistent());
}

TEST(MarlinViewChange, V1VirtualBlockWinsAndCommitsHiddenBlock) {
  // The paper's Fig. 2c end-to-end: a replica locked past the leader's
  // snapshot votes for the virtual block via R2; the virtual block forms a
  // pre-prepareQC, acquires its real parent through `vc`, and committing
  // it also commits the "hidden" block early.
  ReplicaConfig cfg;
  cfg.disable_happy_path = true;
  ProtocolHarness h(Kind::kMarlin, 1, cfg);

  // Stage A: commit b1 (h1). Then propose b2 (h2); let the COMMIT notice
  // for b2 reach only replica 0 → only replica 0 (and leader 1) lock b2.
  int stage = 0;
  Hash256 b2_hash{};
  h.set_drop([&](const BusMessage& m) {
    if (stage == 1) {
      if (auto n = peek<types::QcNoticeMsg>(m, MsgKind::kQcNotice)) {
        if (n->phase == Phase::kCommit && n->qc.height == 2) {
          b2_hash = n->qc.block_hash;
          return m.to != 0;  // deliver to replica 0 only
        }
        if (n->phase == Phase::kDecide && n->qc.height == 2) return true;
      }
    }
    if (stage == 2) {
      // Unsafe snapshot: drop replica 0's VIEW-CHANGE to the new leader.
      if (m.envelope.kind == MsgKind::kViewChange && m.from == 0) return true;
      // Force the virtual path: drop replica 3's pre-prepare vote for the
      // normal (non-virtual) block.
      if (auto v = peek<types::VoteMsg>(m, MsgKind::kVote)) {
        if (v->phase == Phase::kPrePrepare && m.from == 3) {
          const Block* b = h.replica(3).store().get(v->block_hash);
          if (b && !b->virtual_block) return true;
        }
      }
    }
    return false;
  });

  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  stage = 1;
  h.submit_to_all(op_of(1, 2));
  h.deliver_all();
  ASSERT_FALSE(b2_hash.is_zero());
  EXPECT_EQ(h.marlin(0).locked_qc().height, 2u);  // 0 locked on b2
  EXPECT_EQ(h.marlin(2).locked_qc().height, 1u);

  // Stage B: old leader vanishes; replica 1's VIEW-CHANGE is forged to
  // hide its QC (the Byzantine "hide the latest QC" behaviour, Fig. 2).
  stage = 2;
  h.crash(1);
  h.submit_to_all(op_of(1, 3));
  h.timeout(0);
  h.timeout(2);
  h.timeout(3);

  // Forged VC from replica 1 claiming lb = the height-1 block.
  const Block* b1 = h.replica(2).store().get(h.replica(2).committed_hash());
  ASSERT_NE(b1, nullptr);
  ASSERT_EQ(b1->height, 1u);
  QuorumCert qc_b1 = forge_qc(h.suite(), QcType::kPrepare, 1, *b1, {0, 2, 3});
  h.post_bypassing(
      1, 2,
      types::make_envelope(MsgKind::kViewChange,
                           forge_view_change(h.suite(), 1, 2,
                                             BlockRef::of(*b1),
                                             Justify{qc_b1, {}})));
  h.deliver_all();

  // The virtual path must have resolved the view and committed BOTH the
  // hidden b2 and the virtual block.
  EXPECT_EQ(h.marlin(2).unhappy_view_changes(), 1u);
  for (ReplicaId r : {0u, 2u, 3u}) {
    EXPECT_GE(h.replica(r).committed_height(), 3u) << "replica " << r;
    EXPECT_TRUE(h.replica(r).store().extends(h.replica(r).committed_hash(),
                                             b2_hash))
        << "replica " << r << " must have committed through b2";
  }
  // The committed tip is the virtual block.
  const Block* tip = h.replica(2).store().get(h.replica(2).committed_hash());
  ASSERT_NE(tip, nullptr);
  EXPECT_TRUE(tip->virtual_block);
  EXPECT_TRUE(h.all_consistent());
}

TEST(MarlinViewChange, V3TwoPrePrepareQcsYieldTwoChildren) {
  // Forge the Lemma-4 Case-3 snapshot: two pre-prepareQCs of equal rank
  // (one for a normal block, one for a virtual block with its vc) reach
  // the new leader; it must extend both.
  ProtocolHarness h(Kind::kMarlin);
  h.start_all();
  h.deliver_all();

  const Block genesis = Block::genesis();
  const QuorumCert genesis_qc = QuorumCert::genesis(genesis.hash());

  // Crafted history: A(h1,v1) → B(h2,v1); N(h2,v2) child of A; V(h3,v2)
  // virtual with real parent B.
  Block a = make_child(genesis, 1, Justify{genesis_qc, {}}, {op_of(1, 1)});
  QuorumCert qc_a = forge_qc(h.suite(), QcType::kPrepare, 1, a, {0, 1, 2});
  Block b = make_child(a, 1, Justify{qc_a, {}}, {op_of(1, 2)});
  QuorumCert qc_b = forge_qc(h.suite(), QcType::kPrepare, 1, b, {0, 1, 2});

  Block n_block = make_child(a, 2, Justify{qc_a, {}}, {op_of(1, 3)});
  QuorumCert pp_n =
      forge_qc(h.suite(), QcType::kPrePrepare, 2, n_block, {0, 1, 2});

  Block v_block;
  v_block.parent_link = Hash256{};
  v_block.parent_view = qc_a.view;
  v_block.view = 2;
  v_block.height = 3;
  v_block.virtual_block = true;
  v_block.ops = {op_of(1, 3)};
  v_block.justify = Justify{qc_a, {}};
  QuorumCert pp_v =
      forge_qc(h.suite(), QcType::kPrePrepare, 2, v_block, {0, 1, 2});

  std::size_t entries_seen = 0;
  bool child_of_n = false, child_of_v = false, vc_attached = false;
  h.set_drop([&](const BusMessage& m) {
    if (auto p = peek<types::ProposalMsg>(m, MsgKind::kProposal)) {
      if (p->phase == Phase::kPrePrepare && m.to == 0) {
        entries_seen = p->entries.size();
        for (const auto& e : p->entries) {
          if (e.block.parent_link == n_block.hash()) child_of_n = true;
          if (e.block.parent_link == v_block.hash()) {
            child_of_v = true;
            vc_attached = e.justify.vc.has_value();
          }
        }
      }
    }
    return false;
  });

  // Feed the forged snapshot to view-3 leader (replica 3).
  h.post_bypassing(
      0, 3,
      types::make_envelope(MsgKind::kViewChange,
                           forge_view_change(h.suite(), 0, 3,
                                             BlockRef::of(n_block),
                                             Justify{pp_n, {}})));
  h.post_bypassing(
      1, 3,
      types::make_envelope(MsgKind::kViewChange,
                           forge_view_change(h.suite(), 1, 3,
                                             BlockRef::of(v_block),
                                             Justify{pp_v, qc_b})));
  h.post_bypassing(
      2, 3,
      types::make_envelope(MsgKind::kViewChange,
                           forge_view_change(h.suite(), 2, 3, BlockRef::of(b),
                                             Justify{qc_b, {}})));
  h.deliver_all();

  EXPECT_EQ(h.marlin(3).unhappy_view_changes(), 1u);
  EXPECT_EQ(entries_seen, 2u);
  EXPECT_TRUE(child_of_n);
  EXPECT_TRUE(child_of_v);
  EXPECT_TRUE(vc_attached);

  // Give everyone the crafted bodies so the decided branch can execute.
  for (ReplicaId r = 0; r < h.n(); ++r) {
    for (const Block* blk : {&a, &b, &n_block, &v_block}) {
      h.post_bypassing(0, r,
                       types::make_envelope(MsgKind::kFetchResponse,
                                            types::FetchResponseMsg{*blk}));
    }
  }
  h.deliver_all();
  for (ReplicaId r = 0; r < h.n(); ++r) {
    EXPECT_GE(h.replica(r).committed_height(), 3u) << "replica " << r;
  }
  EXPECT_TRUE(h.all_consistent());
}

TEST(MarlinViewChange, R3LockedReplicaVotesForChildOfLockedBlock) {
  ProtocolHarness h(Kind::kMarlin);
  h.start_all();
  h.deliver_all();

  const Block genesis = Block::genesis();
  const QuorumCert genesis_qc = QuorumCert::genesis(genesis.hash());
  Block x = make_child(genesis, 2, Justify{genesis_qc, {}}, {op_of(1, 1)});
  QuorumCert prepare_x = forge_qc(h.suite(), QcType::kPrepare, 2, x, {1, 2, 3});
  QuorumCert pp_x = forge_qc(h.suite(), QcType::kPrePrepare, 2, x, {1, 2, 3});

  // Lock replica 0 on prepareQC(X): a COMMIT notice from view 2's leader.
  types::QcNoticeMsg lock_notice{Phase::kCommit, 2, prepare_x, {}};
  h.post(2, 0, types::make_envelope(MsgKind::kQcNotice, lock_notice));
  h.deliver_all();
  ASSERT_EQ(h.marlin(0).locked_qc().block_hash, x.hash());

  // View 3 leader proposes a child of X justified by X's pre-prepareQC.
  // R1 fails for replica 0 (prepare outranks pre-prepare at equal view)
  // but R3 must fire.
  Block child = make_child(x, 3, Justify{pp_x, {}}, {op_of(1, 2)});
  types::ProposalMsg msg;
  msg.phase = Phase::kPrePrepare;
  msg.view = 3;
  msg.entries.push_back({child, child.justify});

  bool voted = false;
  h.set_drop([&](const BusMessage& m) {
    if (auto v = peek<types::VoteMsg>(m, MsgKind::kVote)) {
      if (m.from == 0 && v->phase == Phase::kPrePrepare &&
          v->block_hash == child.hash()) {
        voted = true;
      }
    }
    return false;
  });
  // Move replica 0 to view 3 first (f+1 forged view-change messages).
  for (ReplicaId s : {1u, 2u}) {
    h.post_bypassing(
        s, 0,
        types::make_envelope(MsgKind::kViewChange,
                             forge_view_change(h.suite(), s, 3,
                                               BlockRef::of(x),
                                               Justify{prepare_x, {}})));
  }
  h.deliver_all();
  ASSERT_EQ(h.replica(0).current_view(), 3u);
  h.post(3, 0, types::make_envelope(MsgKind::kProposal, msg));
  h.deliver_all();
  EXPECT_TRUE(voted);
}

TEST(MarlinViewChange, R1RejectedWhenJustifyBelowLock) {
  ProtocolHarness h(Kind::kMarlin);
  h.start_all();
  h.deliver_all();

  const Block genesis = Block::genesis();
  const QuorumCert genesis_qc = QuorumCert::genesis(genesis.hash());
  Block x = make_child(genesis, 2, Justify{genesis_qc, {}}, {op_of(1, 1)});
  QuorumCert prepare_x = forge_qc(h.suite(), QcType::kPrepare, 2, x, {1, 2, 3});

  types::QcNoticeMsg lock_notice{Phase::kCommit, 2, prepare_x, {}};
  h.post(2, 0, types::make_envelope(MsgKind::kQcNotice, lock_notice));
  h.deliver_all();

  // Child of genesis justified only by the genesis QC: below the lock, not
  // a virtual R2 shape, not the locked block's pre-prepareQC → no vote.
  Block stale = make_child(genesis, 3, Justify{genesis_qc, {}}, {op_of(9, 1)});
  types::ProposalMsg msg;
  msg.phase = Phase::kPrePrepare;
  msg.view = 3;
  msg.entries.push_back({stale, stale.justify});

  bool voted = false;
  h.set_drop([&](const BusMessage& m) {
    if (m.envelope.kind == MsgKind::kVote && m.from == 0) voted = true;
    return false;
  });
  for (ReplicaId s : {1u, 2u}) {
    h.post_bypassing(
        s, 0,
        types::make_envelope(MsgKind::kViewChange,
                             forge_view_change(h.suite(), s, 3,
                                               BlockRef::of(x),
                                               Justify{prepare_x, {}})));
  }
  h.deliver_all();
  h.post(3, 0, types::make_envelope(MsgKind::kProposal, msg));
  h.deliver_all();
  EXPECT_FALSE(voted);
}

TEST(MarlinViewChange, PrePrepareVoteDoesNotMoveLockOrLb) {
  ReplicaConfig cfg;
  cfg.disable_happy_path = true;
  ProtocolHarness h(Kind::kMarlin, 1, cfg);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();

  const auto locked_before = h.marlin(0).locked_qc();
  const auto lb_before = h.marlin(0).last_voted();

  // Run the view change but freeze it right after the PRE-PREPARE votes:
  // drop the leader's PREPARE notice.
  h.set_drop([&](const BusMessage& m) {
    if (auto n = peek<types::QcNoticeMsg>(m, MsgKind::kQcNotice)) {
      return n->phase == Phase::kPrepare;
    }
    return false;
  });
  h.submit_to_all(op_of(1, 2));
  h.timeout_all();
  h.deliver_all();

  EXPECT_EQ(h.marlin(0).locked_qc(), locked_before);
  EXPECT_EQ(h.marlin(0).last_voted(), lb_before);
}

TEST(MarlinViewChange, FPlusOneViewChangesForceAdoption) {
  ProtocolHarness h(Kind::kMarlin);
  h.start_all();
  h.deliver_all();
  ASSERT_EQ(h.replica(0).current_view(), 1u);

  const Block genesis = Block::genesis();
  BlockRef lb{genesis.hash(), 0, 0, 0, false};
  const QuorumCert genesis_qc = QuorumCert::genesis(genesis.hash());
  // f + 1 = 2 view-change messages for view 7 → replica 0 must join.
  for (ReplicaId s : {1u, 2u}) {
    h.post(s, 0,
           types::make_envelope(MsgKind::kViewChange,
                                forge_view_change(h.suite(), s, 7, lb,
                                                  Justify{genesis_qc, {}})));
  }
  h.deliver_all();
  EXPECT_EQ(h.replica(0).current_view(), 7u);
}

TEST(MarlinViewChange, SingleViewChangeDoesNotForceAdoption) {
  ProtocolHarness h(Kind::kMarlin);
  h.start_all();
  h.deliver_all();
  const Block genesis = Block::genesis();
  BlockRef lb{genesis.hash(), 0, 0, 0, false};
  h.post(1, 0,
         types::make_envelope(
             MsgKind::kViewChange,
             forge_view_change(h.suite(), 1, 7, lb,
                               Justify{QuorumCert::genesis(genesis.hash()),
                                       {}})));
  h.deliver_all();
  EXPECT_EQ(h.replica(0).current_view(), 1u);
}

TEST(MarlinViewChange, LaggingReplicaSyncsViaProposal) {
  ProtocolHarness h(Kind::kMarlin);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();

  // Replica 0 misses the view change entirely.
  h.set_drop([&](const BusMessage& m) { return m.to == 0; });
  h.submit_to_all(op_of(1, 2));
  h.timeout(1);
  h.timeout(2);
  h.timeout(3);
  h.deliver_all();
  ASSERT_EQ(h.replica(0).current_view(), 1u);
  ASSERT_EQ(h.replica(2).current_view(), 2u);

  // Heal: the next proposal in view 2 pulls replica 0 forward.
  h.set_drop(nullptr);
  h.submit_to_all(op_of(1, 3));
  h.deliver_all();
  EXPECT_EQ(h.replica(0).current_view(), 2u);
  EXPECT_EQ(h.replica(0).committed_height(),
            h.replica(2).committed_height());
  EXPECT_TRUE(h.all_consistent());
}

TEST(MarlinViewChange, ForgedViewChangeWithBadSigIgnored) {
  ProtocolHarness h(Kind::kMarlin);
  h.start_all();
  h.deliver_all();
  const Block genesis = Block::genesis();
  BlockRef lb{genesis.hash(), 0, 0, 0, false};
  auto m = forge_view_change(h.suite(), 1, 7, lb,
                             Justify{QuorumCert::genesis(genesis.hash()), {}});
  m.parsig.sig[3] ^= 0xff;
  for (ReplicaId s : {1u, 2u}) {
    auto copy = m;
    copy.parsig.signer = s;  // claim different senders, same bad sig
    h.post(s, 0, types::make_envelope(MsgKind::kViewChange, copy));
  }
  h.deliver_all();
  EXPECT_EQ(h.replica(0).current_view(), 1u);
}

// ---------------------------------------------------------------------------
// TxPool / VoteCollector units
// ---------------------------------------------------------------------------

TEST(TxPool, DeduplicatesByClientRequest) {
  TxPool pool;
  pool.add(op_of(1, 1));
  pool.add(op_of(1, 1));
  pool.add(op_of(2, 1));
  EXPECT_EQ(pool.pending(), 2u);
}

TEST(TxPool, ExecutedWatermarkDropsStale) {
  TxPool pool;
  pool.mark_committed(op_of(1, 5));
  pool.add(op_of(1, 4));  // stale
  pool.add(op_of(1, 6));  // fresh
  EXPECT_EQ(pool.pending(), 1u);
  EXPECT_TRUE(pool.executed(1, 5));
  EXPECT_TRUE(pool.executed(1, 3));
  EXPECT_FALSE(pool.executed(1, 6));
}

TEST(TxPool, BatchSkipsCommittedInPlace) {
  TxPool pool;
  for (RequestId r = 1; r <= 10; ++r) pool.add(op_of(1, r));
  pool.mark_committed(op_of(1, 7));  // 1..7 now committed
  auto batch = pool.next_batch(100);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].request, 8u);
}

TEST(TxPool, BatchRespectsCap) {
  TxPool pool;
  for (RequestId r = 1; r <= 10; ++r) pool.add(op_of(1, r));
  EXPECT_EQ(pool.next_batch(4).size(), 4u);
  EXPECT_EQ(pool.pending(), 6u);
}

TEST(VoteCollector, EmitsExactlyOnceAtThreshold) {
  VoteCollector vc(3);
  const Hash256 h = crypto::Sha256::digest(to_bytes("b"));
  EXPECT_FALSE(vc.add(Phase::kPrepare, h, {0, Bytes(64, 1)}).has_value());
  EXPECT_FALSE(vc.add(Phase::kPrepare, h, {1, Bytes(64, 1)}).has_value());
  auto group = vc.add(Phase::kPrepare, h, {2, Bytes(64, 1)});
  ASSERT_TRUE(group.has_value());
  EXPECT_EQ(group->signer_count(), 3u);
  EXPECT_FALSE(vc.add(Phase::kPrepare, h, {3, Bytes(64, 1)}).has_value());
}

TEST(VoteCollector, DuplicateSignersIgnored) {
  VoteCollector vc(3);
  const Hash256 h = crypto::Sha256::digest(to_bytes("b"));
  EXPECT_FALSE(vc.add(Phase::kPrepare, h, {0, Bytes(64, 1)}).has_value());
  EXPECT_FALSE(vc.add(Phase::kPrepare, h, {0, Bytes(64, 2)}).has_value());
  EXPECT_FALSE(vc.add(Phase::kPrepare, h, {1, Bytes(64, 1)}).has_value());
  EXPECT_EQ(vc.count(Phase::kPrepare, h), 2u);
}

TEST(VoteCollector, PhasesAreIndependent) {
  VoteCollector vc(2);
  const Hash256 h = crypto::Sha256::digest(to_bytes("b"));
  EXPECT_FALSE(vc.add(Phase::kPrepare, h, {0, Bytes(64, 1)}).has_value());
  EXPECT_FALSE(vc.add(Phase::kCommit, h, {0, Bytes(64, 1)}).has_value());
  EXPECT_TRUE(vc.add(Phase::kPrepare, h, {1, Bytes(64, 1)}).has_value());
  EXPECT_TRUE(vc.add(Phase::kCommit, h, {1, Bytes(64, 1)}).has_value());
}

}  // namespace
}  // namespace marlin::consensus::testing

namespace marlin::consensus::testing {
namespace {

// ---------------------------------------------------------------------------
// Adversarial structural validation: corrupted virtual blocks, mismatched
// justifies, and malformed QC notices must never draw votes.
// ---------------------------------------------------------------------------

class MarlinAdversarial : public ::testing::Test {
 protected:
  void SetUp() override {
    h_ = std::make_unique<ProtocolHarness>(Kind::kMarlin);
    h_->start_all();
    h_->submit_to_all(op_of(1, 1));
    h_->deliver_all();  // height 1 committed in view 1

    // Everyone's highQC/lockedQC is the prepareQC for the height-1 block.
    tip_ = *h_->replica(0).store().get(h_->replica(0).committed_hash());
    tip_qc_ = h_->marlin(0).locked_qc();

    votes_ = 0;
    h_->set_drop([this](const BusMessage& m) {
      if (m.envelope.kind == types::MsgKind::kVote) ++votes_;
      return false;
    });
  }

  /// Sends a PRE-PREPARE proposal (as view-2 leader, replica 2) to
  /// replica 0 after moving it to view 2, and returns the vote count.
  std::size_t probe(const Block& b, const Justify& justify) {
    // Move replica 0 into view 2 with f+1 forged view changes.
    for (ReplicaId s : {1u, 3u}) {
      h_->post_bypassing(
          s, 0,
          types::make_envelope(
              types::MsgKind::kViewChange,
              forge_view_change(h_->suite(), s, 2, BlockRef::of(tip_),
                                Justify{tip_qc_, {}})));
    }
    h_->deliver_all();
    types::ProposalMsg msg;
    msg.phase = Phase::kPrePrepare;
    msg.view = 2;
    msg.entries.push_back({b, justify});
    h_->post(2, 0, types::make_envelope(types::MsgKind::kProposal, msg));
    h_->deliver_all();
    return votes_;
  }

  Block valid_virtual() {
    Block b;
    b.parent_link = Hash256{};
    b.parent_view = tip_qc_.view;
    b.view = 2;
    b.height = tip_qc_.height + 2;
    b.virtual_block = true;
    b.ops = {op_of(9, 1)};
    b.justify = Justify{tip_qc_, {}};
    return b;
  }

  std::unique_ptr<ProtocolHarness> h_;
  Block tip_;
  QuorumCert tip_qc_;
  std::size_t votes_ = 0;
};

TEST_F(MarlinAdversarial, WellFormedVirtualBlockDrawsVote) {
  // Sanity: the valid shape IS accepted (R1 for an unlocked-relative qc).
  EXPECT_GT(probe(valid_virtual(), Justify{tip_qc_, {}}), 0u);
}

TEST_F(MarlinAdversarial, VirtualBlockWithNonZeroParentLinkRejected) {
  Block b = valid_virtual();
  b.parent_link = tip_.hash();
  EXPECT_EQ(probe(b, Justify{tip_qc_, {}}), 0u);
}

TEST_F(MarlinAdversarial, VirtualBlockWithWrongHeightRejected) {
  Block b = valid_virtual();
  b.height = tip_qc_.height + 3;  // must be exactly qc.height + 2
  EXPECT_EQ(probe(b, Justify{tip_qc_, {}}), 0u);
}

TEST_F(MarlinAdversarial, VirtualBlockWithWrongPviewRejected) {
  Block b = valid_virtual();
  b.parent_view = tip_qc_.view + 1;
  EXPECT_EQ(probe(b, Justify{tip_qc_, {}}), 0u);
}

TEST_F(MarlinAdversarial, VirtualBlockJustifiedByPrePrepareQcRejected) {
  QuorumCert pp = forge_qc(h_->suite(), QcType::kPrePrepare, 1, tip_,
                           {0, 1, 2});
  Block b = valid_virtual();
  b.justify = Justify{pp, {}};
  EXPECT_EQ(probe(b, Justify{pp, {}}), 0u);
}

TEST_F(MarlinAdversarial, MessageJustifyMismatchingBlockJustifyRejected) {
  Block b = valid_virtual();  // block.justify = tip_qc_
  QuorumCert other = forge_qc(h_->suite(), QcType::kPrepare, 1, tip_,
                              {1, 2, 3});
  other.height = tip_qc_.height;
  // The message-level justify differs from the block's own justify.
  Justify mismatched{other, {}};
  mismatched.qc->view = tip_qc_.view;
  EXPECT_EQ(probe(b, mismatched), 0u);
}

TEST_F(MarlinAdversarial, JustifyFromCurrentViewRejectedInPrePrepare) {
  // A pre-prepare justify must be formed BEFORE the new view.
  QuorumCert current_view_qc =
      forge_qc(h_->suite(), QcType::kPrepare, 2, tip_, {0, 1, 2});
  Block b = valid_virtual();
  b.parent_view = current_view_qc.view;
  b.justify = Justify{current_view_qc, {}};
  EXPECT_EQ(probe(b, Justify{current_view_qc, {}}), 0u);
}

TEST_F(MarlinAdversarial, PrepareNoticeForVirtualQcWithoutAuxRejected) {
  // A pre-prepareQC for a virtual block needs its validating vc.
  Block vb = valid_virtual();
  QuorumCert pp_virtual =
      forge_qc(h_->suite(), QcType::kPrePrepare, 2, vb, {1, 2, 3});
  for (ReplicaId s : {1u, 3u}) {
    h_->post_bypassing(
        s, 0,
        types::make_envelope(
            types::MsgKind::kViewChange,
            forge_view_change(h_->suite(), s, 2, BlockRef::of(tip_),
                              Justify{tip_qc_, {}})));
  }
  h_->deliver_all();
  types::QcNoticeMsg notice{Phase::kPrepare, 2, pp_virtual, {}};
  h_->post(2, 0, types::make_envelope(types::MsgKind::kQcNotice, notice));
  h_->deliver_all();
  EXPECT_EQ(votes_, 0u);
}

TEST_F(MarlinAdversarial, PrepareNoticeWithWrongAuxRejected) {
  Block vb = valid_virtual();
  QuorumCert pp_virtual =
      forge_qc(h_->suite(), QcType::kPrePrepare, 2, vb, {1, 2, 3});
  // aux at the wrong height (must be qc.height - 1).
  QuorumCert bad_aux = forge_qc(h_->suite(), QcType::kPrepare, 1, tip_,
                                {1, 2, 3});
  ASSERT_NE(bad_aux.height + 1, pp_virtual.height);
  for (ReplicaId s : {1u, 3u}) {
    h_->post_bypassing(
        s, 0,
        types::make_envelope(
            types::MsgKind::kViewChange,
            forge_view_change(h_->suite(), s, 2, BlockRef::of(tip_),
                              Justify{tip_qc_, {}})));
  }
  h_->deliver_all();
  types::QcNoticeMsg notice{Phase::kPrepare, 2, pp_virtual, bad_aux};
  h_->post(2, 0, types::make_envelope(types::MsgKind::kQcNotice, notice));
  h_->deliver_all();
  EXPECT_EQ(votes_, 0u);
}

TEST_F(MarlinAdversarial, CommitNoticeWithPrePrepareQcRejected) {
  QuorumCert pp = forge_qc(h_->suite(), QcType::kPrePrepare, 1, tip_,
                           {0, 1, 2});
  types::QcNoticeMsg notice{Phase::kCommit, 1, pp, {}};
  h_->post(1, 0, types::make_envelope(types::MsgKind::kQcNotice, notice));
  h_->deliver_all();
  EXPECT_EQ(votes_, 0u);
}

TEST_F(MarlinAdversarial, DecideWithPrepareQcDoesNotCommit) {
  const Height before = h_->replica(0).committed_height();
  types::QcNoticeMsg notice{Phase::kDecide, 1, tip_qc_, {}};
  h_->post(1, 0, types::make_envelope(types::MsgKind::kQcNotice, notice));
  h_->deliver_all();
  EXPECT_EQ(h_->replica(0).committed_height(), before);
}

}  // namespace
}  // namespace marlin::consensus::testing

namespace marlin::consensus::testing {
namespace {

// ---------------------------------------------------------------------------
// Cost accounting at the protocol level (BusEnv tallies the charge hooks)
// ---------------------------------------------------------------------------

TEST(MarlinCosts, QcVerificationIsCachedAcrossPresentations) {
  ProtocolHarness h(Kind::kMarlin);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();

  // Replica 0 has verified the height-1 prepareQC once (via the COMMIT
  // notice). Re-presenting the same QC must not charge more verifies.
  auto& env = h.env(0);
  const std::uint64_t verifies_before = env.verifies;
  const Block* tip = h.replica(0).store().get(h.replica(0).committed_hash());
  QuorumCert qc = h.marlin(0).locked_qc();
  types::QcNoticeMsg notice{types::Phase::kCommit, 1, qc, {}};
  for (int i = 0; i < 5; ++i) {
    h.post(1, 0, types::make_envelope(types::MsgKind::kQcNotice, notice));
  }
  h.deliver_all();
  // Each re-delivery may charge the replica's own vote signing but never
  // re-verification of the cached QC (5 deliveries, 0 extra verifies).
  EXPECT_EQ(env.verifies, verifies_before);
  (void)tip;
}

TEST(MarlinCosts, SignAndVerifyChargesAccrue) {
  ProtocolHarness h(Kind::kMarlin);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  // Every replica signed two votes (prepare + commit).
  for (ReplicaId r = 0; r < h.n(); ++r) {
    EXPECT_GE(h.env(r).signs, 2u) << r;
  }
  // The leader verified two quorums of partial signatures.
  EXPECT_GE(h.env(1).verifies, 2u * (h.n() - 1));
  // Hashing was charged for block construction / validation.
  for (ReplicaId r = 0; r < h.n(); ++r) {
    EXPECT_GT(h.env(r).hash_bytes, 0u) << r;
  }
}

// ---------------------------------------------------------------------------
// Happy-path eligibility
// ---------------------------------------------------------------------------

TEST(MarlinViewChange, DivergentLbForcesUnhappyPath) {
  // Happy path requires n−f *identical* lb values; inject a snapshot with
  // two different lbs and verify the leader takes the pre-prepare route
  // even though the happy path is enabled.
  ProtocolHarness h(Kind::kMarlin);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();

  const Block* tip = h.replica(0).store().get(h.replica(0).committed_hash());
  const Block* genesis =
      h.replica(0).store().get(h.replica(0).store().genesis_hash());
  QuorumCert tip_qc = h.marlin(0).locked_qc();

  // Two replicas report the tip, one reports genesis: no identical-lb
  // quorum of 3 exists.
  h.crash(1);  // old leader stays silent
  auto vc = [&](ReplicaId s, const Block& lb) {
    return types::make_envelope(
        types::MsgKind::kViewChange,
        forge_view_change(h.suite(), s, 2, BlockRef::of(lb),
                          Justify{tip_qc, {}}));
  };
  h.post_bypassing(0, 2, vc(0, *tip));
  h.post_bypassing(2, 2, vc(2, *tip));
  h.post_bypassing(3, 2, vc(3, *genesis));
  h.deliver_all();

  EXPECT_EQ(h.marlin(2).happy_view_changes(), 0u);
  EXPECT_EQ(h.marlin(2).unhappy_view_changes(), 1u);
}

TEST(MarlinViewChange, HappyPathQuorumWithinLargerSnapshot) {
  // 3 of the first 3 messages share lb, a 4th differs: the identical-lb
  // subset still satisfies the happy path.
  ProtocolHarness h(Kind::kMarlin);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  h.submit_to_all(op_of(1, 2));
  h.timeout_all();  // organic VC: all four replicas report the same lb
  h.deliver_all();
  EXPECT_EQ(h.marlin(2).happy_view_changes(), 1u);
  EXPECT_TRUE(h.all_consistent());
}

}  // namespace
}  // namespace marlin::consensus::testing
