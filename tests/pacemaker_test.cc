// Pacemaker policy unit tests: closed-form exponential backoff (growth,
// max clamp — including exponents large enough to overflow pow to inf),
// progress resetting the failure ladder, and rotating mode ignoring the
// backoff entirely.
#include <gtest/gtest.h>

#include "runtime/pacemaker.h"

namespace marlin::runtime {
namespace {

PacemakerConfig small_config() {
  PacemakerConfig config;
  config.base_timeout = Duration::millis(100);
  config.backoff_factor = 2.0;
  config.max_timeout = Duration::seconds(30);
  return config;
}

/// Drives the ladder: a view that fires without progress is a consecutive
/// failure.
void fail_views(Pacemaker& pm, std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) {
    pm.on_view_entered();
    EXPECT_TRUE(pm.should_advance_on_fire());
  }
}

TEST(Pacemaker, BackoffGrowsGeometrically) {
  Pacemaker pm(small_config());
  EXPECT_EQ(pm.view_timeout(), Duration::millis(100));

  fail_views(pm, 1);
  EXPECT_EQ(pm.view_timeout(), Duration::millis(200));
  fail_views(pm, 1);
  EXPECT_EQ(pm.view_timeout(), Duration::millis(400));
  fail_views(pm, 3);
  EXPECT_EQ(pm.consecutive_failures(), 5u);
  EXPECT_EQ(pm.view_timeout(), Duration::millis(3200));
}

TEST(Pacemaker, BackoffClampsAtMaxTimeout) {
  PacemakerConfig config = small_config();
  config.max_timeout = Duration::seconds(5);
  Pacemaker pm(config);

  // 100ms * 2^6 = 6.4s > 5s.
  fail_views(pm, 6);
  EXPECT_EQ(pm.view_timeout(), Duration::seconds(5));

  // Far past any representable double: pow overflows to inf; the clamp
  // must absorb it instead of producing a garbage duration.
  fail_views(pm, 4000);
  EXPECT_EQ(pm.consecutive_failures(), 4006u);
  EXPECT_EQ(pm.view_timeout(), Duration::seconds(5));
}

TEST(Pacemaker, NonIntegerFactorMatchesIterativeBackoff) {
  PacemakerConfig config = small_config();
  config.backoff_factor = 1.5;
  Pacemaker pm(config);
  fail_views(pm, 3);
  // 100ms * 1.5^3 = 337.5ms; the closed form must agree with repeated
  // multiplication to within a nanosecond of duration resolution.
  const Duration expected = Duration::from_seconds_f(0.1 * 1.5 * 1.5 * 1.5);
  EXPECT_NEAR(static_cast<double>(pm.view_timeout().as_nanos()),
              static_cast<double>(expected.as_nanos()), 1.0);
}

TEST(Pacemaker, ProgressResetsTheFailureLadder) {
  Pacemaker pm(small_config());
  fail_views(pm, 4);
  EXPECT_EQ(pm.view_timeout(), Duration::millis(1600));

  pm.on_view_entered();
  pm.on_progress();
  EXPECT_EQ(pm.consecutive_failures(), 0u);
  EXPECT_EQ(pm.view_timeout(), Duration::millis(100));
  // A progressed view's timer firing restarts the timer instead of
  // advancing the view.
  EXPECT_FALSE(pm.should_advance_on_fire());
  // ...but only once per progress signal: the next quiet firing advances.
  EXPECT_TRUE(pm.should_advance_on_fire());
  EXPECT_EQ(pm.consecutive_failures(), 1u);
}

TEST(Pacemaker, RotatingModeUsesFixedIntervalAndAlwaysAdvances) {
  PacemakerConfig config = small_config();
  config.rotate_on_timer = true;
  config.rotation_interval = Duration::millis(700);
  Pacemaker pm(config);

  EXPECT_EQ(pm.view_timeout(), Duration::millis(700));
  pm.on_view_entered();
  pm.on_progress();
  // Rotation ignores progress: the timer always rotates the leader.
  EXPECT_TRUE(pm.should_advance_on_fire());
  EXPECT_EQ(pm.view_timeout(), Duration::millis(700));
}

}  // namespace
}  // namespace marlin::runtime
