// Unit tests for the common kernel: bytes/hex, serialization, varints,
// status/result, RNG, time types, CRC32C, histograms.
#include <gtest/gtest.h>

#include <set>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "common/histogram.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/sim_time.h"
#include "common/status.h"

namespace marlin {
namespace {

// ---------------------------------------------------------------------------
// bytes / hex
// ---------------------------------------------------------------------------

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xcd, 0xef, 0xff};
  EXPECT_EQ(to_hex(data), "0001abcdefff");
  auto back = from_hex("0001abcdefff");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Bytes, HexUppercaseAccepted) {
  auto v = from_hex("DEADBEEF");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_hex(*v), "deadbeef");
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_FALSE(from_hex("abc").has_value());
}

TEST(Bytes, HexRejectsNonHex) {
  EXPECT_FALSE(from_hex("zz").has_value());
  EXPECT_FALSE(from_hex("0x12").has_value());
}

TEST(Bytes, EmptyHex) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  auto v = from_hex("");
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(v->empty());
}

TEST(Bytes, ConstantTimeEqual) {
  const Bytes a = to_bytes("secret");
  const Bytes b = to_bytes("secret");
  const Bytes c = to_bytes("secreT");
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, to_bytes("secre")));
}

TEST(Bytes, Append) {
  Bytes a = to_bytes("foo");
  append(a, to_bytes("bar"));
  EXPECT_EQ(a, to_bytes("foobar"));
}

// ---------------------------------------------------------------------------
// status / result
// ---------------------------------------------------------------------------

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.to_string(), "Ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = error(ErrorCode::kNotFound, "missing thing");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.to_string(), "NotFound: missing thing");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> r = error(ErrorCode::kCorruption, "bad");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kCorruption);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, TakeMovesValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).take();
  EXPECT_EQ(s, "payload");
}

// ---------------------------------------------------------------------------
// serialization
// ---------------------------------------------------------------------------

TEST(Serialize, FixedWidthRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.boolean(true);

  Reader r(w.buffer());
  std::uint8_t a;
  std::uint16_t b;
  std::uint32_t c;
  std::uint64_t d;
  std::int64_t e;
  bool f;
  ASSERT_TRUE(r.u8(a).is_ok());
  ASSERT_TRUE(r.u16(b).is_ok());
  ASSERT_TRUE(r.u32(c).is_ok());
  ASSERT_TRUE(r.u64(d).is_ok());
  ASSERT_TRUE(r.i64(e).is_ok());
  ASSERT_TRUE(r.boolean(f).is_ok());
  EXPECT_EQ(a, 0xab);
  EXPECT_EQ(b, 0x1234);
  EXPECT_EQ(c, 0xdeadbeef);
  EXPECT_EQ(d, 0x0123456789abcdefULL);
  EXPECT_EQ(e, -42);
  EXPECT_TRUE(f);
  EXPECT_TRUE(r.exhausted());
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, Encodes) {
  Writer w;
  w.varint(GetParam());
  Reader r(w.buffer());
  std::uint64_t v = 0;
  ASSERT_TRUE(r.varint(v).is_ok());
  EXPECT_EQ(v, GetParam());
  EXPECT_TRUE(r.exhausted());
}

INSTANTIATE_TEST_SUITE_P(
    Values, VarintRoundTrip,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
                      (1ull << 32) - 1, 1ull << 32, (1ull << 56) + 12345,
                      ~0ull));

TEST(Serialize, VarintRejectsNonCanonical) {
  // 0x80 0x00 encodes 0 in two bytes — must be rejected.
  const Bytes bad = {0x80, 0x00};
  Reader r(bad);
  std::uint64_t v = 0;
  EXPECT_FALSE(r.varint(v).is_ok());
}

TEST(Serialize, VarintRejectsOverflow) {
  // 10 bytes with a high final digit overflows 64 bits.
  const Bytes bad = {0xff, 0xff, 0xff, 0xff, 0xff,
                     0xff, 0xff, 0xff, 0xff, 0x02};
  Reader r(bad);
  std::uint64_t v = 0;
  EXPECT_FALSE(r.varint(v).is_ok());
}

TEST(Serialize, BytesAndStrings) {
  Writer w;
  w.bytes(to_bytes("hello"));
  w.str("world");
  Reader r(w.buffer());
  Bytes b;
  std::string s;
  ASSERT_TRUE(r.bytes(b).is_ok());
  ASSERT_TRUE(r.str(s).is_ok());
  EXPECT_EQ(b, to_bytes("hello"));
  EXPECT_EQ(s, "world");
}

TEST(Serialize, TruncationDetected) {
  Writer w;
  w.u64(7);
  Reader r(BytesView(w.buffer().data(), 4));  // cut in half
  std::uint64_t v;
  EXPECT_FALSE(r.u64(v).is_ok());
}

TEST(Serialize, TrailingBytesDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.buffer());
  std::uint8_t v;
  ASSERT_TRUE(r.u8(v).is_ok());
  EXPECT_FALSE(r.expect_exhausted().is_ok());
}

TEST(Serialize, BadBooleanRejected) {
  const Bytes bad = {0x02};
  Reader r(bad);
  bool b;
  EXPECT_FALSE(r.boolean(b).is_ok());
}

// ---------------------------------------------------------------------------
// rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, BernoulliRoughlyFair) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.next_bool(0.5);
  EXPECT_GT(heads, 4600);
  EXPECT_LT(heads, 5400);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double total = 0;
  const int k = 20000;
  for (int i = 0; i < k; ++i) total += rng.next_exponential(5.0);
  EXPECT_NEAR(total / k, 5.0, 0.3);
}

TEST(Rng, BytesLengthAndDeterminism) {
  Rng a(23), b(23);
  EXPECT_EQ(a.next_bytes(33).size(), 33u);
  b.next_bytes(33);
  EXPECT_EQ(a.next_bytes(7), b.next_bytes(7));
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(31);
  Rng child = parent.fork();
  EXPECT_NE(parent.next_u64(), child.next_u64());
}

// ---------------------------------------------------------------------------
// time
// ---------------------------------------------------------------------------

TEST(SimTime, Arithmetic) {
  const TimePoint t0 = TimePoint::origin();
  const TimePoint t1 = t0 + Duration::millis(1500);
  EXPECT_EQ((t1 - t0).as_nanos(), 1500000000);
  EXPECT_LT(t0, t1);
  EXPECT_EQ(Duration::seconds(2) - Duration::millis(500),
            Duration::millis(1500));
  EXPECT_EQ(Duration::micros(3) * 4, Duration::micros(12));
}

TEST(SimTime, Conversions) {
  EXPECT_DOUBLE_EQ(Duration::millis(250).as_seconds_f(), 0.25);
  EXPECT_DOUBLE_EQ(Duration::micros(1500).as_millis_f(), 1.5);
  EXPECT_EQ(Duration::from_seconds_f(0.001).as_nanos(), 1000000);
}

TEST(SimTime, Formatting) {
  EXPECT_EQ(Duration::nanos(12).to_string(), "12ns");
  EXPECT_EQ(Duration::millis(12).to_string(), "12.000ms");
  EXPECT_EQ(Duration::seconds(3).to_string(), "3.000s");
}

// ---------------------------------------------------------------------------
// crc32c
// ---------------------------------------------------------------------------

TEST(Crc32c, KnownVectors) {
  // RFC 3720 test vector: 32 bytes of zeros.
  const Bytes zeros(32, 0x00);
  EXPECT_EQ(crc32c(zeros), 0x8a9136aau);
  const Bytes ones(32, 0xff);
  EXPECT_EQ(crc32c(ones), 0x62a8ab43u);
  Bytes ascending(32);
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(crc32c(ascending), 0x46dd794eu);
}

TEST(Crc32c, EmptyInput) {
  EXPECT_EQ(crc32c(Bytes{}), 0u);
}

TEST(Crc32c, MaskedDiffersFromRaw) {
  const Bytes data = to_bytes("some record");
  EXPECT_NE(crc32c(data), crc32c_masked(data));
}

TEST(Crc32c, DetectsBitFlip) {
  Bytes data = to_bytes("payload payload payload");
  const std::uint32_t before = crc32c(data);
  data[5] ^= 0x01;
  EXPECT_NE(before, crc32c(data));
}

// ---------------------------------------------------------------------------
// histogram / counters
// ---------------------------------------------------------------------------

TEST(Histogram, Percentiles) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.record(Duration::millis(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), Duration::millis(1));
  EXPECT_EQ(h.max(), Duration::millis(100));
  EXPECT_NEAR(h.percentile(50).as_millis_f(), 50, 1.5);
  EXPECT_NEAR(h.percentile(95).as_millis_f(), 95, 1.5);
  EXPECT_NEAR(h.mean().as_millis_f(), 50.5, 0.01);
}

TEST(Histogram, PercentileInterpolatesBetweenSamples) {
  LatencyHistogram h;
  for (int ms : {10, 20, 30, 40}) h.record(Duration::millis(ms));
  // rank = p/100 * (n-1); p50 over 4 samples lands halfway between the
  // 2nd and 3rd (exactly 25 ms), p25 a quarter of the way past the 1st.
  EXPECT_EQ(h.percentile(0), Duration::millis(10));
  EXPECT_EQ(h.percentile(50), Duration::millis(25));
  EXPECT_EQ(h.percentile(25), Duration::micros(17500));
  EXPECT_EQ(h.percentile(100), Duration::millis(40));
}

TEST(Histogram, PercentileIsConstAndSortsLazily) {
  LatencyHistogram h;
  h.record(Duration::millis(30));
  h.record(Duration::millis(10));
  h.record(Duration::millis(20));
  const LatencyHistogram& view = h;  // const access must work (exporters)
  EXPECT_EQ(view.percentile(0), Duration::millis(10));
  EXPECT_EQ(view.percentile(100), Duration::millis(30));
  EXPECT_EQ(view.median(), Duration::millis(20));
}

TEST(Histogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile(0), Duration::zero());
  EXPECT_EQ(h.percentile(50), Duration::zero());
  EXPECT_EQ(h.percentile(100), Duration::zero());
  EXPECT_EQ(h.mean(), Duration::zero());
  EXPECT_EQ(h.min(), Duration::zero());
  EXPECT_EQ(h.max(), Duration::zero());
  EXPECT_EQ(h.median(), Duration::zero());
}

TEST(Histogram, SingleSampleIsEveryPercentile) {
  LatencyHistogram h;
  h.record(Duration::millis(7));
  // n == 1 means rank 0 for every p, so both quantile bounds and the
  // median all collapse to the lone sample.
  EXPECT_EQ(h.percentile(0), Duration::millis(7));
  EXPECT_EQ(h.percentile(50), Duration::millis(7));
  EXPECT_EQ(h.percentile(99), Duration::millis(7));
  EXPECT_EQ(h.percentile(100), Duration::millis(7));
  EXPECT_EQ(h.median(), Duration::millis(7));
  EXPECT_EQ(h.min(), Duration::millis(7));
  EXPECT_EQ(h.max(), Duration::millis(7));
  EXPECT_EQ(h.mean(), Duration::millis(7));
}

TEST(Histogram, Merge) {
  LatencyHistogram a, b;
  a.record(Duration::millis(10));
  b.record(Duration::millis(30));
  a.merge_from(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max(), Duration::millis(30));
}

// ---------------------------------------------------------------------------
// log sink
// ---------------------------------------------------------------------------

TEST(Log, ScopedCaptureCollectsAndRestores) {
  {
    ScopedLogCapture capture;
    MLOG_INFO("hello %d", 42);
    MLOG_WARN("watch out");
    ASSERT_EQ(capture.lines().size(), 2u);
    EXPECT_TRUE(capture.contains("hello 42"));
    EXPECT_TRUE(capture.contains("WARN"));
    EXPECT_FALSE(capture.contains("absent"));
    capture.clear();
    EXPECT_TRUE(capture.lines().empty());
  }
  // After the capture's destructor, a fresh capture starts empty — the
  // previous sink (stderr) was restored in between without leaking lines.
  ScopedLogCapture again;
  EXPECT_TRUE(again.lines().empty());
}

TEST(Log, CaptureHonorsItsLevel) {
  ScopedLogCapture capture(LogLevel::kWarn);
  MLOG_DEBUG("too quiet");
  MLOG_ERROR("loud");
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_TRUE(capture.contains("loud"));
}

TEST(Log, NestedCapturesRestoreInner) {
  ScopedLogCapture outer;
  {
    ScopedLogCapture inner;
    MLOG_INFO("inner message");
    EXPECT_TRUE(inner.contains("inner message"));
    EXPECT_FALSE(outer.contains("inner message"));
  }
  MLOG_INFO("outer message");
  EXPECT_TRUE(outer.contains("outer message"));
}

TEST(WindowedCounter, CountsOnlyWindow) {
  WindowedCounter c;
  c.set_window(TimePoint::from_nanos(1000), TimePoint::from_nanos(2000));
  c.record(TimePoint::from_nanos(500), 5);    // before
  c.record(TimePoint::from_nanos(1500), 7);   // inside
  c.record(TimePoint::from_nanos(2000), 9);   // at end (exclusive)
  EXPECT_EQ(c.total(), 21u);
  EXPECT_EQ(c.in_window(), 7u);
}

TEST(WindowedCounter, Rate) {
  WindowedCounter c;
  c.set_window(TimePoint::origin(), TimePoint::origin() + Duration::seconds(2));
  c.record(TimePoint::origin() + Duration::millis(100), 10);
  c.record(TimePoint::origin() + Duration::millis(200), 10);
  EXPECT_DOUBLE_EQ(c.rate_per_second(), 10.0);
}

}  // namespace
}  // namespace marlin
