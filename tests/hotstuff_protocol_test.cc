// Protocol-level tests for the HotStuff baseline: the three-phase commit
// rule, locking on precommitQCs, the safeNode rule, NEW-VIEW view changes,
// and a head-to-head phase-count comparison against Marlin (the paper's
// headline claim).
#include <gtest/gtest.h>

#include <set>

#include "protocol_harness.h"

namespace marlin::consensus::testing {
namespace {

using types::Block;
using types::BlockRef;
using types::Hash256;
using types::Justify;
using types::MsgKind;
using types::Phase;
using types::QcType;
using types::QuorumCert;

constexpr const char* kDomain = "hotstuff";

QuorumCert forge_qc(const crypto::SignatureSuite& suite, QcType type,
                    ViewNumber view, const Block& b,
                    std::vector<ReplicaId> signers) {
  QuorumCert qc;
  qc.type = type;
  qc.view = view;
  qc.block_hash = b.hash();
  qc.block_view = b.view;
  qc.height = b.height;
  qc.pview = b.parent_view;
  const Hash256 digest = qc.signed_digest(kDomain);
  std::vector<crypto::PartialSig> parts;
  for (ReplicaId r : signers) {
    parts.push_back({r, suite.signer(r)->sign(digest.view())});
  }
  qc.sigs = *crypto::SigGroup::combine(
      parts, static_cast<std::uint32_t>(signers.size()));
  return qc;
}

Block make_child(const Block& parent, ViewNumber view, Justify justify,
                 std::vector<types::Operation> ops = {}) {
  Block b;
  b.parent_link = parent.hash();
  b.parent_view = parent.view;
  b.view = view;
  b.height = parent.height + 1;
  b.ops = std::move(ops);
  b.justify = std::move(justify);
  return b;
}

// ---------------------------------------------------------------------------
// Normal case
// ---------------------------------------------------------------------------

TEST(HotStuffNormal, CommitsAcrossAllReplicas) {
  ProtocolHarness h(Kind::kHotStuff);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  for (ReplicaId r = 0; r < h.n(); ++r) {
    ASSERT_EQ(h.delivered(r).size(), 1u) << "replica " << r;
    EXPECT_EQ(h.replica(r).committed_height(), 1u);
  }
  EXPECT_TRUE(h.all_consistent());
}

TEST(HotStuffNormal, ThreeVoteRounds) {
  // HotStuff must run all three rounds: PRE-COMMIT, COMMIT, DECIDE notices.
  ProtocolHarness h(Kind::kHotStuff);
  std::set<Phase> phases;
  h.set_drop([&](const BusMessage& m) {
    if (auto notice = peek<types::QcNoticeMsg>(m, MsgKind::kQcNotice)) {
      phases.insert(notice->phase);
    }
    return false;
  });
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  EXPECT_TRUE(phases.count(Phase::kPreCommit));
  EXPECT_TRUE(phases.count(Phase::kCommit));
  EXPECT_TRUE(phases.count(Phase::kDecide));
}

TEST(HotStuffNormal, MarlinUsesOneFewerVoteRound) {
  // Head-to-head: per committed block, count vote messages a single
  // replica sends. HotStuff votes 3 times per block, Marlin 2.
  auto count_votes = [](Kind kind) {
    ProtocolHarness h(kind);
    std::size_t votes_from_3 = 0;
    h.set_drop([&](const BusMessage& m) {
      if (m.envelope.kind == MsgKind::kVote && m.from == 3) ++votes_from_3;
      return false;
    });
    h.start_all();
    h.submit_to_all(op_of(1, 1));
    h.deliver_all();
    return votes_from_3;
  };
  EXPECT_EQ(count_votes(Kind::kMarlin), 2u);
  EXPECT_EQ(count_votes(Kind::kHotStuff), 3u);
}

TEST(HotStuffNormal, PipelinedBlocksInOneView) {
  ProtocolHarness h(Kind::kHotStuff);
  h.start_all();
  for (RequestId i = 1; i <= 5; ++i) {
    h.submit_to_all(op_of(1, i));
    h.deliver_all();
  }
  for (ReplicaId r = 0; r < h.n(); ++r) {
    EXPECT_EQ(h.replica(r).committed_height(), 5u);
    EXPECT_EQ(h.replica(r).current_view(), 1u);
  }
  EXPECT_TRUE(h.all_consistent());
}

TEST(HotStuffNormal, LocksOnPrecommitQc) {
  ProtocolHarness h(Kind::kHotStuff);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  for (ReplicaId r = 0; r < h.n(); ++r) {
    EXPECT_EQ(h.hotstuff(r).locked_qc().type, QcType::kPreCommit);
    EXPECT_EQ(h.hotstuff(r).locked_qc().height, 1u);
  }
}

TEST(HotStuffNormal, PrepareQcHighTracked) {
  ProtocolHarness h(Kind::kHotStuff);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  h.submit_to_all(op_of(1, 2));
  h.deliver_all();
  for (ReplicaId r = 0; r < h.n(); ++r) {
    EXPECT_EQ(h.hotstuff(r).prepare_qc_high().height, 2u);
  }
}

TEST(HotStuffNormal, NonLeaderProposalIgnored) {
  ProtocolHarness h(Kind::kHotStuff);
  h.start_all();
  h.deliver_all();
  Block genesis = Block::genesis();
  Block b = make_child(genesis, 1,
                       Justify{QuorumCert::genesis(genesis.hash()), {}},
                       {op_of(9, 9)});
  types::ProposalMsg msg;
  msg.phase = Phase::kPrepare;
  msg.view = 1;
  msg.entries.push_back({b, b.justify});
  std::size_t votes = 0;
  h.set_drop([&](const BusMessage& m) {
    if (m.envelope.kind == MsgKind::kVote) ++votes;
    return false;
  });
  h.post(2, 0, types::make_envelope(MsgKind::kProposal, msg));
  h.deliver_all();
  EXPECT_EQ(votes, 0u);
}

TEST(HotStuffNormal, VoteOncePerHeight) {
  ProtocolHarness h(Kind::kHotStuff);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();

  // Equivocation at an already-voted height is rejected.
  const Block* genesis =
      h.replica(0).store().get(h.replica(0).store().genesis_hash());
  Block fork = make_child(*genesis, 1,
                          Justify{QuorumCert::genesis(genesis->hash()), {}},
                          {op_of(7, 7)});
  types::ProposalMsg msg;
  msg.phase = Phase::kPrepare;
  msg.view = 1;
  msg.entries.push_back({fork, fork.justify});
  std::size_t votes = 0;
  h.set_drop([&](const BusMessage& m) {
    if (m.envelope.kind == MsgKind::kVote) ++votes;
    return false;
  });
  h.post(1, 0, types::make_envelope(MsgKind::kProposal, msg));
  h.deliver_all();
  EXPECT_EQ(votes, 0u);
}

TEST(HotStuffNormal, SafeNodeRejectsConflictWithLock) {
  ProtocolHarness h(Kind::kHotStuff);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();  // everyone locked on height 1 (precommitQC, view 1)

  // A proposal extending genesis (conflicting with the lock) justified by
  // a same-view prepareQC: liveness rule fails (qc.view == locked.view),
  // safety rule fails (branch conflicts) → no votes.
  const Block* genesis =
      h.replica(0).store().get(h.replica(0).store().genesis_hash());
  Block evil_parent = make_child(*genesis, 1, Justify{}, {op_of(8, 8)});
  QuorumCert evil_qc =
      forge_qc(h.suite(), QcType::kPrepare, 1, evil_parent, {0, 1, 2});
  Block evil = make_child(evil_parent, 1, Justify{evil_qc, {}}, {op_of(8, 9)});
  types::ProposalMsg msg;
  msg.phase = Phase::kPrepare;
  msg.view = 1;
  msg.entries.push_back({evil, evil.justify});

  std::size_t votes = 0;
  h.set_drop([&](const BusMessage& m) {
    if (m.envelope.kind == MsgKind::kVote) ++votes;
    return false;
  });
  // Give replicas the parent body first so the extends() check can run.
  for (ReplicaId r = 0; r < h.n(); ++r) {
    h.post(1, r,
           types::make_envelope(MsgKind::kFetchResponse,
                                types::FetchResponseMsg{evil_parent}));
  }
  h.deliver_all();
  for (ReplicaId r = 0; r < h.n(); ++r) {
    h.post(1, r, types::make_envelope(MsgKind::kProposal, msg));
  }
  h.deliver_all();
  EXPECT_EQ(votes, 0u);
  EXPECT_TRUE(h.all_consistent());
}

TEST(HotStuffNormal, SafeNodeLivenessRuleAcceptsHigherView) {
  // After a view change, the justify has a higher view than the lock:
  // the liveness rule admits it even when extends() cannot be evaluated.
  ProtocolHarness h(Kind::kHotStuff);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  h.submit_to_all(op_of(1, 2));
  h.timeout_all();  // view 2; new leader proposes on old prepareQC
  h.deliver_all();
  for (ReplicaId r = 0; r < h.n(); ++r) {
    EXPECT_EQ(h.replica(r).current_view(), 2u);
    EXPECT_GE(h.replica(r).committed_height(), 2u);
  }
  EXPECT_TRUE(h.all_consistent());
}

// ---------------------------------------------------------------------------
// View changes
// ---------------------------------------------------------------------------

TEST(HotStuffViewChange, LeaderCrashRecovery) {
  ProtocolHarness h(Kind::kHotStuff);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();

  h.crash(1);  // view-1 leader gone
  h.submit_to_all(op_of(1, 2));
  h.timeout(0);
  h.timeout(2);
  h.timeout(3);
  h.deliver_all();

  EXPECT_EQ(h.hotstuff(2).view_changes_led(), 1u);
  for (ReplicaId r : {0u, 2u, 3u}) {
    EXPECT_EQ(h.replica(r).current_view(), 2u);
    EXPECT_EQ(h.replica(r).committed_height(), 2u);
  }
  EXPECT_TRUE(h.all_consistent());
}

TEST(HotStuffViewChange, NewLeaderAdoptsHighestPrepareQc) {
  ProtocolHarness h(Kind::kHotStuff);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  h.submit_to_all(op_of(1, 2));
  h.deliver_all();
  ASSERT_EQ(h.replica(2).committed_height(), 2u);

  h.timeout_all();
  h.deliver_all();
  // New leader extended the height-2 prepareQC: next commit is height 3.
  h.submit_to_all(op_of(1, 3));
  h.deliver_all();
  for (ReplicaId r = 0; r < h.n(); ++r) {
    EXPECT_GE(h.replica(r).committed_height(), 3u);
  }
  EXPECT_TRUE(h.all_consistent());
}

TEST(HotStuffViewChange, SuccessiveViewChanges) {
  ProtocolHarness h(Kind::kHotStuff);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  for (int round = 0; round < 4; ++round) {
    h.submit_to_all(op_of(1, 2 + round));
    h.timeout_all();
    h.deliver_all();
  }
  for (ReplicaId r = 0; r < h.n(); ++r) {
    EXPECT_EQ(h.replica(r).current_view(), 5u);
    EXPECT_EQ(h.replica(r).committed_height(), 5u);
  }
  EXPECT_TRUE(h.all_consistent());
}

TEST(HotStuffViewChange, LaggingReplicaSyncs) {
  ProtocolHarness h(Kind::kHotStuff);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  h.set_drop([&](const BusMessage& m) { return m.to == 3; });
  h.submit_to_all(op_of(1, 2));
  h.timeout(0);
  h.timeout(1);
  h.timeout(2);
  h.deliver_all();
  ASSERT_EQ(h.replica(3).current_view(), 1u);
  h.set_drop(nullptr);
  h.submit_to_all(op_of(1, 3));
  h.deliver_all();
  EXPECT_EQ(h.replica(3).current_view(), 2u);
  EXPECT_EQ(h.replica(3).committed_height(),
            h.replica(0).committed_height());
  EXPECT_TRUE(h.all_consistent());
}

TEST(HotStuffViewChange, InvalidNewViewIgnored) {
  ProtocolHarness h(Kind::kHotStuff);
  h.start_all();
  h.deliver_all();
  // Forged NEW-VIEW with a bad parsig must not count toward the quorum.
  const Block genesis = Block::genesis();
  types::ViewChangeMsg m;
  m.view = 2;
  m.last_voted = BlockRef{genesis.hash(), 0, 0, 0, false};
  m.high_qc = Justify{QuorumCert::genesis(genesis.hash()), {}};
  m.parsig = {0, Bytes(crypto::kSignatureSize, 0x42)};
  for (ReplicaId s : {0u, 1u, 3u}) {
    auto copy = m;
    copy.parsig.signer = s;
    h.post(s, 2, types::make_envelope(MsgKind::kViewChange, copy));
  }
  h.deliver_all();
  EXPECT_EQ(h.hotstuff(2).view_changes_led(), 0u);
  EXPECT_EQ(h.replica(2).current_view(), 1u);
}

TEST(HotStuffViewChange, WorksAtLargerScale) {
  ProtocolHarness h(Kind::kHotStuff, /*f=*/2);  // n = 7
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  h.crash(1);
  h.crash(3);
  h.submit_to_all(op_of(1, 2));
  for (ReplicaId r : {0u, 2u, 4u, 5u, 6u}) h.timeout(r);
  h.deliver_all();
  for (ReplicaId r : {0u, 2u, 4u, 5u, 6u}) {
    EXPECT_EQ(h.replica(r).committed_height(), 2u) << "replica " << r;
  }
  EXPECT_TRUE(h.all_consistent());
}

TEST(MarlinScale, WorksAtLargerScale) {
  ProtocolHarness h(Kind::kMarlin, /*f=*/3);  // n = 10
  h.start_all();
  for (RequestId i = 1; i <= 3; ++i) {
    h.submit_to_all(op_of(1, i));
    h.deliver_all();
  }
  h.crash(1);  // current leader
  h.submit_to_all(op_of(1, 4));
  for (ReplicaId r = 0; r < h.n(); ++r) {
    if (r != 1) h.timeout(r);
  }
  h.deliver_all();
  for (ReplicaId r = 0; r < h.n(); ++r) {
    if (r == 1) continue;
    EXPECT_EQ(h.replica(r).committed_height(), 4u) << "replica " << r;
  }
  EXPECT_TRUE(h.all_consistent());
}

}  // namespace
}  // namespace marlin::consensus::testing

namespace marlin::consensus::testing {
namespace {

// ---------------------------------------------------------------------------
// Adversarial paths for the baseline
// ---------------------------------------------------------------------------

class HotStuffAdversarial : public ::testing::Test {
 protected:
  void SetUp() override {
    h_ = std::make_unique<ProtocolHarness>(Kind::kHotStuff);
    h_->start_all();
    h_->submit_to_all(op_of(1, 1));
    h_->deliver_all();
    tip_ = *h_->replica(0).store().get(h_->replica(0).committed_hash());
    votes_ = 0;
    h_->set_drop([this](const BusMessage& m) {
      if (m.envelope.kind == types::MsgKind::kVote) ++votes_;
      return false;
    });
  }

  std::unique_ptr<ProtocolHarness> h_;
  Block tip_;
  std::size_t votes_ = 0;
};

TEST_F(HotStuffAdversarial, PreCommitNoticeWithWrongTypeRejected) {
  QuorumCert pc = forge_qc(h_->suite(), QcType::kPreCommit, 1, tip_,
                           {0, 1, 2});
  types::QcNoticeMsg notice{types::Phase::kPreCommit, 1, pc, {}};
  h_->post(1, 0, types::make_envelope(types::MsgKind::kQcNotice, notice));
  h_->deliver_all();
  EXPECT_EQ(votes_, 0u);  // PRE-COMMIT notices must carry a prepareQC
}

TEST_F(HotStuffAdversarial, CommitNoticeWithPrepareQcRejected) {
  QuorumCert p = forge_qc(h_->suite(), QcType::kPrepare, 1, tip_, {0, 1, 2});
  types::QcNoticeMsg notice{types::Phase::kCommit, 1, p, {}};
  h_->post(1, 0, types::make_envelope(types::MsgKind::kQcNotice, notice));
  h_->deliver_all();
  EXPECT_EQ(votes_, 0u);  // COMMIT notices must carry a precommitQC
}

TEST_F(HotStuffAdversarial, NoticeWithAuxRejected) {
  QuorumCert p = forge_qc(h_->suite(), QcType::kPrepare, 1, tip_, {0, 1, 2});
  types::QcNoticeMsg notice{types::Phase::kPreCommit, 1, p,
                            forge_qc(h_->suite(), QcType::kPrepare, 1, tip_,
                                     {0, 1, 2})};
  h_->post(1, 0, types::make_envelope(types::MsgKind::kQcNotice, notice));
  h_->deliver_all();
  EXPECT_EQ(votes_, 0u);  // HotStuff never uses the aux field
}

TEST_F(HotStuffAdversarial, TwoEntryProposalRejected) {
  Block b1 = make_child(tip_, 1, tip_.justify, {op_of(5, 1)});
  types::ProposalMsg msg;
  msg.phase = types::Phase::kPrepare;
  msg.view = 1;
  msg.entries.push_back({b1, b1.justify});
  msg.entries.push_back({b1, b1.justify});
  h_->post(1, 0, types::make_envelope(types::MsgKind::kProposal, msg));
  h_->deliver_all();
  EXPECT_EQ(votes_, 0u);
}

TEST_F(HotStuffAdversarial, DecideWithForgedPrepareQcDoesNotCommit) {
  const Height before = h_->replica(0).committed_height();
  Block fake = make_child(tip_, 1, Justify{}, {op_of(9, 9)});
  QuorumCert fake_commit =
      forge_qc(h_->suite(), QcType::kPrepare, 1, fake, {0, 1, 2});
  types::QcNoticeMsg notice{types::Phase::kDecide, 1, fake_commit, {}};
  h_->post(1, 0, types::make_envelope(types::MsgKind::kQcNotice, notice));
  h_->deliver_all();
  EXPECT_EQ(h_->replica(0).committed_height(), before);
}

TEST_F(HotStuffAdversarial, ForgedCommitQcOnRealChainCommits) {
  // Positive control: a commitQC with genuine quorum signatures over an
  // actually-certified block IS accepted regardless of who relays it —
  // QCs, not sender identity, carry the authority.
  h_->set_drop(nullptr);
  h_->submit_to_all(op_of(1, 2));
  h_->deliver_all();
  const Block tip2 = *h_->replica(0).store().get(
      h_->replica(0).committed_hash());
  QuorumCert commit =
      forge_qc(h_->suite(), QcType::kCommit, 1, tip2, {0, 1, 2});
  // Relay "from" the leader to a replica that already has everything.
  types::QcNoticeMsg notice{types::Phase::kDecide, 1, commit, {}};
  h_->post(1, 0, types::make_envelope(types::MsgKind::kQcNotice, notice));
  h_->deliver_all();
  EXPECT_FALSE(h_->replica(0).safety_violated());
}

}  // namespace
}  // namespace marlin::consensus::testing
