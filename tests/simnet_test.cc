// Tests for the discrete-event simulator, the network model (latency,
// bandwidth serialization, drops, partitions, crash faults, GST), and the
// CPU-charging sequential processor.
#include <gtest/gtest.h>

#include "common/alloc_hook.h"
#include "simnet/network.h"
#include "simnet/processor.h"
#include "simnet/simulator.h"

namespace marlin::sim {
namespace {

// ---------------------------------------------------------------------------
// Simulator core
// ---------------------------------------------------------------------------

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.schedule(Duration::millis(30), [&] { order.push_back(3); });
  sim.schedule(Duration::millis(10), [&] { order.push_back(1); });
  sim.schedule(Duration::millis(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SameTimeIsFifo) {
  Simulator sim(1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(Duration::millis(10), [&, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim(1);
  TimePoint seen;
  sim.schedule(Duration::millis(250), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, TimePoint::origin() + Duration::millis(250));
}

TEST(Simulator, CancelledEventDoesNotRun) {
  Simulator sim(1);
  bool ran = false;
  TimerHandle h = sim.schedule(Duration::millis(5), [&] { ran = true; });
  h.cancel();
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim(1);
  bool ran = false;
  TimerHandle h = sim.schedule(Duration::millis(5), [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  h.cancel();  // must not crash
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim(1);
  int count = 0;
  sim.schedule(Duration::millis(10), [&] { ++count; });
  sim.schedule(Duration::millis(20), [&] { ++count; });
  sim.schedule(Duration::millis(30), [&] { ++count; });
  sim.run_until(TimePoint::origin() + Duration::millis(20));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::millis(20));
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim(1);
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule(Duration::millis(1), recurse);
  };
  sim.schedule(Duration::millis(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
}

TEST(Simulator, MaxEventsGuard) {
  Simulator sim(1);
  std::function<void()> forever = [&] {
    sim.schedule(Duration::millis(1), forever);
  };
  sim.schedule(Duration::millis(1), forever);
  sim.run(100);
  EXPECT_EQ(sim.events_executed(), 100u);
}

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

class Recorder : public NetworkNode {
 public:
  struct Rx {
    NodeId from;
    Payload payload;
    TimePoint at;
  };
  explicit Recorder(Simulator& sim) : sim_(sim) {}
  void on_message(NodeId from, Payload payload) override {
    received.push_back({from, std::move(payload), sim_.now()});
  }
  Simulator& sim_;
  std::vector<Rx> received;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : sim_(7) {}

  Network& make_net(NetConfig cfg) {
    net_ = std::make_unique<Network>(sim_, cfg);
    for (int i = 0; i < 4; ++i) {
      nodes_.push_back(std::make_unique<Recorder>(sim_));
      net_->add_node(nodes_.back().get());
    }
    return *net_;
  }

  Simulator sim_;
  std::unique_ptr<Network> net_;
  std::vector<std::unique_ptr<Recorder>> nodes_;
};

TEST_F(NetworkTest, DeliversWithPropagationDelay) {
  NetConfig cfg;
  cfg.one_way_delay = Duration::millis(40);
  cfg.jitter = Duration::zero();
  Network& net = make_net(cfg);
  net.send(0, 1, to_bytes("hello"));
  sim_.run();
  ASSERT_EQ(nodes_[1]->received.size(), 1u);
  EXPECT_EQ(nodes_[1]->received[0].payload.bytes(), to_bytes("hello"));
  // Tiny message: transmission time is negligible but present.
  const Duration took = nodes_[1]->received[0].at - TimePoint::origin();
  EXPECT_GE(took, Duration::millis(40));
  EXPECT_LT(took, Duration::millis(41));
}

TEST_F(NetworkTest, BandwidthSerializesLargeMessages) {
  NetConfig cfg;
  cfg.one_way_delay = Duration::millis(10);
  cfg.jitter = Duration::zero();
  cfg.link_bandwidth_bps = 8e6;  // 1 MB/s
  cfg.nic_bandwidth_bps = 8e7;
  Network& net = make_net(cfg);
  net.send(0, 1, Bytes(1000000, 0x55));  // 1 MB → 1 s on the link
  sim_.run();
  ASSERT_EQ(nodes_[1]->received.size(), 1u);
  const Duration took = nodes_[1]->received[0].at - TimePoint::origin();
  EXPECT_GE(took, Duration::millis(1010));
  EXPECT_LT(took, Duration::millis(1200));
}

TEST_F(NetworkTest, NicSharedAcrossDestinations) {
  NetConfig cfg;
  cfg.one_way_delay = Duration::zero();
  cfg.jitter = Duration::zero();
  cfg.link_bandwidth_bps = 1e12;  // links unconstrained
  cfg.nic_bandwidth_bps = 8e6;    // 1 MB/s NIC
  Network& net = make_net(cfg);
  // Three 1 MB sends from node 0 serialize at the NIC: ~1, 2, 3 seconds.
  for (NodeId d = 1; d <= 3; ++d) net.send(0, d, Bytes(1000000, 1));
  sim_.run();
  const Duration t1 = nodes_[1]->received[0].at - TimePoint::origin();
  const Duration t3 = nodes_[3]->received[0].at - TimePoint::origin();
  EXPECT_NEAR(t1.as_seconds_f(), 1.0, 0.05);
  EXPECT_NEAR(t3.as_seconds_f(), 3.0, 0.05);
}

TEST_F(NetworkTest, PerLinkBandwidthIndependent) {
  NetConfig cfg;
  cfg.one_way_delay = Duration::zero();
  cfg.jitter = Duration::zero();
  cfg.link_bandwidth_bps = 8e6;  // 1 MB/s per link
  cfg.nic_bandwidth_bps = 1e12;  // NIC unconstrained
  Network& net = make_net(cfg);
  for (NodeId d = 1; d <= 3; ++d) net.send(0, d, Bytes(1000000, 1));
  sim_.run();
  // All three links serialize in parallel: each arrives ≈ 1 s.
  for (NodeId d = 1; d <= 3; ++d) {
    const Duration t = nodes_[d]->received[0].at - TimePoint::origin();
    EXPECT_NEAR(t.as_seconds_f(), 1.0, 0.05) << d;
  }
}

TEST_F(NetworkTest, LoopbackIsFast) {
  Network& net = make_net(NetConfig{});
  net.send(2, 2, to_bytes("self"));
  sim_.run();
  ASSERT_EQ(nodes_[2]->received.size(), 1u);
  EXPECT_LT(nodes_[2]->received[0].at - TimePoint::origin(),
            Duration::millis(1));
}

TEST_F(NetworkTest, CrashedNodeNeitherSendsNorReceives) {
  Network& net = make_net(NetConfig{});
  net.set_node_down(1, true);
  net.send(1, 2, to_bytes("from crashed"));
  net.send(0, 1, to_bytes("to crashed"));
  sim_.run();
  EXPECT_TRUE(nodes_[2]->received.empty());
  EXPECT_TRUE(nodes_[1]->received.empty());
}

TEST_F(NetworkTest, CrashMidFlightDropsDelivery) {
  NetConfig cfg;
  cfg.jitter = Duration::zero();
  Network& net = make_net(cfg);
  net.send(0, 1, to_bytes("in flight"));
  sim_.run_until(TimePoint::origin() + Duration::millis(5));
  net.set_node_down(1, true);
  sim_.run();
  EXPECT_TRUE(nodes_[1]->received.empty());
}

TEST_F(NetworkTest, FilterBlocksDirectionally) {
  Network& net = make_net(NetConfig{});
  net.set_filter([](NodeId from, NodeId to) {
    return !(from == 0 && to == 1);  // block 0 → 1 only
  });
  net.send(0, 1, to_bytes("blocked"));
  net.send(1, 0, to_bytes("allowed"));
  sim_.run();
  EXPECT_TRUE(nodes_[1]->received.empty());
  EXPECT_EQ(nodes_[0]->received.size(), 1u);
  net.set_filter(nullptr);
  net.send(0, 1, to_bytes("healed"));
  sim_.run();
  EXPECT_EQ(nodes_[1]->received.size(), 1u);
}

TEST_F(NetworkTest, DropProbabilityOneDropsAll) {
  NetConfig cfg;
  cfg.drop_probability = 1.0;
  Network& net = make_net(cfg);
  for (int i = 0; i < 10; ++i) net.send(0, 1, to_bytes("x"));
  sim_.run();
  EXPECT_TRUE(nodes_[1]->received.empty());
  EXPECT_EQ(net.stats(0).messages_dropped, 10u);
}

TEST_F(NetworkTest, PreGstExtraDelayAppliesOnlyBeforeGst) {
  NetConfig cfg;
  cfg.one_way_delay = Duration::millis(10);
  cfg.jitter = Duration::zero();
  cfg.pre_gst_extra_delay_max = Duration::seconds(1);
  Network& net = make_net(cfg);
  net.set_gst(TimePoint::origin() + Duration::seconds(10));

  net.send(0, 1, to_bytes("pre"));
  sim_.run_until(TimePoint::origin() + Duration::seconds(5));

  // Post-GST message: bounded delay again.
  sim_.schedule(Duration::seconds(6), [&] { net.send(0, 2, to_bytes("post")); });
  sim_.run();
  ASSERT_EQ(nodes_[2]->received.size(), 1u);
  const Duration post_delay =
      nodes_[2]->received[0].at - (TimePoint::origin() + Duration::seconds(11));
  EXPECT_LT(post_delay, Duration::millis(11));
}

TEST_F(NetworkTest, StatsAccumulate) {
  Network& net = make_net(NetConfig{});
  net.send(0, 1, Bytes(100, 1));
  net.send(0, 2, Bytes(50, 1));
  sim_.run();
  EXPECT_EQ(net.stats(0).messages_sent, 2u);
  EXPECT_EQ(net.stats(0).bytes_sent, 150u);
  EXPECT_EQ(net.stats(1).messages_delivered, 1u);
  EXPECT_EQ(net.total_stats().bytes_delivered, 150u);
  net.reset_stats();
  EXPECT_EQ(net.total_stats().messages_sent, 0u);
}

// ---------------------------------------------------------------------------
// SequentialProcessor
// ---------------------------------------------------------------------------

TEST(SequentialProcessor, ChargesCpuTime) {
  Simulator sim(1);
  SequentialProcessor cpu(sim);
  TimePoint second_start;
  cpu.post([&] { return Duration::millis(10); });
  cpu.post([&] {
    second_start = sim.now();
    return Duration::millis(5);
  });
  sim.run();
  EXPECT_EQ(second_start, TimePoint::origin() + Duration::millis(10));
  EXPECT_EQ(cpu.total_busy(), Duration::millis(15));
}

TEST(SequentialProcessor, IdleCpuRunsImmediately) {
  Simulator sim(1);
  SequentialProcessor cpu(sim);
  TimePoint start;
  cpu.post([&] {
    start = sim.now();
    return Duration::zero();
  });
  sim.run();
  EXPECT_EQ(start, TimePoint::origin());
}

TEST(SequentialProcessor, BacklogDrains) {
  Simulator sim(1);
  SequentialProcessor cpu(sim);
  int ran = 0;
  for (int i = 0; i < 10; ++i) {
    cpu.post([&] {
      ++ran;
      return Duration::millis(1);
    });
  }
  EXPECT_GT(cpu.backlog(), 0u);
  sim.run();
  EXPECT_EQ(ran, 10);
  EXPECT_EQ(cpu.free_at(), TimePoint::origin() + Duration::millis(10));
}

TEST(SequentialProcessor, TasksPostedDuringRunExecute) {
  Simulator sim(1);
  SequentialProcessor cpu(sim);
  bool inner = false;
  cpu.post([&] {
    cpu.post([&] {
      inner = true;
      return Duration::zero();
    });
    return Duration::millis(3);
  });
  sim.run();
  EXPECT_TRUE(inner);
}

}  // namespace
}  // namespace marlin::sim

namespace marlin::sim {
namespace {

// ---------------------------------------------------------------------------
// Additional simulator/network edge cases
// ---------------------------------------------------------------------------

TEST(SimulatorEdge, RunUntilIdempotentOnEmptyQueue) {
  Simulator sim(1);
  sim.run_until(TimePoint::origin() + Duration::seconds(5));
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::seconds(5));
  sim.run_until(TimePoint::origin() + Duration::seconds(5));
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::seconds(5));
}

TEST(SimulatorEdge, TimerHandleActiveTracksLifecycle) {
  Simulator sim(1);
  TimerHandle inert;
  EXPECT_FALSE(inert.active());
  TimerHandle h = sim.schedule(Duration::millis(10), [] {});
  EXPECT_TRUE(h.active());
  h.cancel();
  EXPECT_FALSE(h.active());
}

TEST(SimulatorEdge, DroppedHandleStillFires) {
  // Fire-and-forget via schedule(): discarding the handle must not leak or
  // suppress the event.
  Simulator sim(1);
  bool ran = false;
  {
    TimerHandle h = sim.schedule(Duration::millis(1), [&] { ran = true; });
    (void)h;
  }
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(SimulatorEdge, StaleHandleCannotCancelRecycledSlot) {
  // After an event fires, its cancellation slot is recycled for the next
  // schedule(). A stale handle to the fired event must observe inactive and
  // must not be able to cancel the slot's new occupant.
  Simulator sim(1);
  bool first = false;
  bool second = false;
  TimerHandle a = sim.schedule(Duration::millis(1), [&] { first = true; });
  sim.run();
  EXPECT_TRUE(first);
  TimerHandle b = sim.schedule(Duration::millis(1), [&] { second = true; });
  EXPECT_FALSE(a.active());
  a.cancel();  // stale: must not touch b's event
  EXPECT_TRUE(b.active());
  sim.run();
  EXPECT_TRUE(second);
}

TEST(SimulatorEdge, PacemakerStyleTimerReuseAcrossViews) {
  // The replica's view timer is one TimerHandle member re-armed on every
  // view entry (cancel + reassign). Only the final arm may fire.
  Simulator sim(1);
  int fired_view = -1;
  int fires = 0;
  TimerHandle timer;
  for (int view = 0; view < 5; ++view) {
    timer.cancel();
    timer = sim.schedule(Duration::millis(10), [&, view] {
      fired_view = view;
      ++fires;
    });
  }
  EXPECT_TRUE(timer.active());
  sim.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(fired_view, 4);
  EXPECT_FALSE(timer.active());
  timer.cancel();  // post-fire cancel stays a no-op
}

TEST(SimulatorEdge, PostAndScheduleShareFifoOrder) {
  // post() and schedule() draw from the same seq counter, so same-time
  // events keep submission order regardless of which API queued them.
  Simulator sim(1);
  std::vector<int> order;
  sim.post(Duration::millis(1), [&] { order.push_back(0); });
  sim.schedule(Duration::millis(1), [&] { order.push_back(1); });
  sim.post(Duration::millis(1), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// ---------------------------------------------------------------------------
// Allocation behaviour of the event engine (this binary links
// marlin_alloc_hook, whose counting operator new underpins the asserts)
// ---------------------------------------------------------------------------

TEST(EventEngineAlloc, SteadyStatePostIsAllocationFree) {
  Simulator sim(1);
  std::uint64_t fired = 0;
  // Self-rescheduling chains, the same shape as network delivery and CPU
  // pump events on the hot path.
  struct Chain {
    Simulator* sim;
    std::uint64_t* fired;
    std::uint64_t remaining = 0;
    void arm() {
      sim->post(Duration::micros(100), [this] {
        ++*fired;
        if (remaining > 0) {
          --remaining;
          arm();
        }
      });
    }
  };
  std::vector<Chain> chains(8, Chain{&sim, &fired});
  // Warmup grows the heap vector to steady-state capacity.
  for (auto& c : chains) {
    c.remaining = 4;
    c.arm();
  }
  sim.run();
  const std::uint64_t warm_fired = fired;

  alloc_hook::reset();
  for (auto& c : chains) {
    c.remaining = 250;
    c.arm();
  }
  sim.run();
  EXPECT_EQ(fired - warm_fired, 8u * 251u);
  EXPECT_EQ(alloc_hook::allocations(), 0u);
}

TEST(EventEngineAlloc, PopMovesEventsInsteadOfCopying) {
  // A callback owning refcounted state: if the queue still copied events on
  // the way out (the old top()+pop() pattern), executing each event would
  // clone its capture and the allocation counter would show it.
  Simulator sim(1);
  Payload payload(Bytes(4096, 0xab));
  std::uint64_t sum = 0;
  for (int i = 0; i < 64; ++i) {
    sim.post(Duration::micros(i), [&sum] { ++sum; });  // warmup: size heap
  }
  sim.run();

  alloc_hook::reset();
  for (int i = 0; i < 64; ++i) {
    sim.post(Duration::micros(i), [&sum, p = payload] { sum += p.size(); });
  }
  sim.run();
  EXPECT_EQ(alloc_hook::allocations(), 0u);
  EXPECT_GE(sum, 64u * 4096u);
}

TEST(SimulatorEdge, ZeroDelayRunsAtCurrentTime) {
  Simulator sim(1);
  sim.schedule(Duration::millis(5), [&] {
    TimePoint inner_time;
    sim.schedule(Duration::zero(), [&] { inner_time = sim.now(); });
    (void)inner_time;
  });
  sim.run();
  EXPECT_EQ(sim.now(), TimePoint::origin() + Duration::millis(5));
}

TEST(NetworkEdge, JitterBoundedByConfig) {
  Simulator sim(3);
  NetConfig cfg;
  cfg.one_way_delay = Duration::millis(10);
  cfg.jitter = Duration::millis(2);
  Network net(sim, cfg);
  struct Sink : NetworkNode {
    Simulator& sim;
    std::vector<TimePoint> at;
    explicit Sink(Simulator& s) : sim(s) {}
    void on_message(NodeId, Payload) override { at.push_back(sim.now()); }
  } a{sim}, b{sim};
  net.add_node(&a);
  net.add_node(&b);
  for (int i = 0; i < 200; ++i) net.send(0, 1, to_bytes("x"));
  sim.run();
  ASSERT_EQ(b.at.size(), 200u);
  for (TimePoint t : b.at) {
    const Duration d = t - TimePoint::origin();
    EXPECT_GE(d, Duration::millis(10));
    EXPECT_LT(d, Duration::millis(13));
  }
}

TEST(NetworkEdge, DeterministicGivenSeed) {
  auto run = [] {
    Simulator sim(42);
    NetConfig cfg;
    cfg.jitter = Duration::millis(5);
    cfg.drop_probability = 0.2;
    Network net(sim, cfg);
    struct Sink : NetworkNode {
      int count = 0;
      void on_message(NodeId, Payload) override { ++count; }
    } a, b;
    net.add_node(&a);
    net.add_node(&b);
    for (int i = 0; i < 500; ++i) net.send(0, 1, to_bytes("x"));
    sim.run();
    return b.count;
  };
  EXPECT_EQ(run(), run());
}

TEST(NetworkEdge, RevivedNodeReceivesAgain) {
  Simulator sim(5);
  Network net(sim, NetConfig{});
  struct Sink : NetworkNode {
    int count = 0;
    void on_message(NodeId, Payload) override { ++count; }
  } a, b;
  net.add_node(&a);
  net.add_node(&b);
  net.set_node_down(1, true);
  net.send(0, 1, to_bytes("lost"));
  sim.run();
  EXPECT_EQ(b.count, 0);
  net.set_node_down(1, false);
  net.send(0, 1, to_bytes("found"));
  sim.run();
  EXPECT_EQ(b.count, 1);
}

// ---------------------------------------------------------------------------
// Crash semantics regressions (pins the down_[to] checks at delivery time)
// ---------------------------------------------------------------------------

TEST(CrashSemantics, InFlightFramesAreDroppedWhenDestinationGoesDown) {
  // A frame already accepted by the network (serialized, propagating) must
  // still be discarded if the destination crashes before it arrives: the
  // down check happens at delivery time, not only at send time.
  Simulator sim(5);
  NetConfig cfg;
  cfg.one_way_delay = Duration::millis(20);
  Network net(sim, cfg);
  struct Sink : NetworkNode {
    int count = 0;
    void on_message(NodeId, Payload) override { ++count; }
  } a, b;
  net.add_node(&a);
  net.add_node(&b);

  net.send(0, 1, to_bytes("mid-flight"));
  // Crash the destination while the frame is on the wire.
  sim.schedule(Duration::millis(10), [&] { net.set_node_down(1, true); });
  sim.run();
  EXPECT_EQ(b.count, 0);
  EXPECT_EQ(net.stats(1).messages_delivered, 0u);
}

TEST(CrashSemantics, InFlightLoopbackDroppedWhenNodeGoesDown) {
  // The loopback fast path has its own delivery-time check.
  Simulator sim(5);
  Network net(sim, NetConfig{});
  struct Sink : NetworkNode {
    int count = 0;
    void on_message(NodeId, Payload) override { ++count; }
  } a;
  net.add_node(&a);
  net.send(0, 0, to_bytes("self"));
  net.set_node_down(0, true);  // before the 5µs local hop delivers
  sim.run();
  EXPECT_EQ(a.count, 0);
}

TEST(CrashSemantics, RecoveredNodeDoesNotReceivePreCrashTraffic) {
  // Frames sent while (or just before) the node was down must not be
  // queued up and replayed at recovery: a revived node only sees traffic
  // sent after it came back.
  Simulator sim(5);
  NetConfig cfg;
  cfg.one_way_delay = Duration::millis(20);
  Network net(sim, cfg);
  struct Sink : NetworkNode {
    std::vector<std::string> got;
    void on_message(NodeId, Payload payload) override {
      got.emplace_back(payload.bytes().begin(), payload.bytes().end());
    }
  } a, b;
  net.add_node(&a);
  net.add_node(&b);

  net.send(0, 1, to_bytes("pre-crash"));          // in flight at crash time
  sim.schedule(Duration::millis(5), [&] { net.set_node_down(1, true); });
  sim.schedule(Duration::millis(10),
               [&] { net.send(0, 1, to_bytes("while-down")); });
  // Recover after both frames' arrival times have passed.
  sim.schedule(Duration::millis(60), [&] { net.set_node_down(1, false); });
  sim.schedule(Duration::millis(70),
               [&] { net.send(0, 1, to_bytes("post-recovery")); });
  sim.run();

  ASSERT_EQ(b.got.size(), 1u);
  EXPECT_EQ(b.got[0], "post-recovery");
  EXPECT_EQ(net.stats(1).messages_delivered, 1u);
}

}  // namespace
}  // namespace marlin::sim
