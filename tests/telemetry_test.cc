// Tests for the live telemetry plane: Prometheus text rendering, the JSONL
// metric-series schema, wire-stat export naming parity with the simulated
// network, the in-loop HTTP telemetry server, event-loop/timer-wheel health
// instrumentation, and live scraping of a real n=4 cluster.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "common/json.h"
#include "common/net_stats.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/telemetry_server.h"
#include "realnet/clock.h"
#include "realnet/event_loop.h"
#include "realnet/http_client.h"
#include "realnet/real_cluster.h"
#include "realnet/timer_wheel.h"

namespace marlin {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

TEST(TelemetryProm, RendersCountersAndGauges) {
  obs::MetricsRegistry reg;
  reg.counter("replica.committed_blocks") += 5;
  reg.counter("net.bytes_sent", "kind=vote") += 10;
  reg.gauge("replica.view") = 3;

  const std::string text = obs::metrics_to_prometheus(reg);
  EXPECT_NE(text.find("# TYPE marlin_replica_committed_blocks counter\n"
                      "marlin_replica_committed_blocks 5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("marlin_net_bytes_sent{kind=\"vote\"} 10"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE marlin_replica_view gauge"), std::string::npos);
  EXPECT_NE(text.find("marlin_replica_view 3"), std::string::npos);
}

TEST(TelemetryProm, OneTypeLinePerFamily) {
  obs::MetricsRegistry reg;
  reg.counter("net.bytes_sent", "kind=vote") += 1;
  reg.counter("net.bytes_sent", "kind=proposal") += 2;
  reg.counter("net.bytes_sent") += 3;

  const std::string text = obs::metrics_to_prometheus(reg);
  EXPECT_EQ(count_occurrences(text, "# TYPE marlin_net_bytes_sent counter"),
            1u)
      << text;
  EXPECT_EQ(count_occurrences(text, "marlin_net_bytes_sent"), 4u) << text;
}

TEST(TelemetryProm, LatencyRendersAsSummaryInSeconds) {
  obs::MetricsRegistry reg;
  reg.latency("client.latency").record(Duration::millis(100));

  const std::string text = obs::metrics_to_prometheus(reg);
  EXPECT_NE(text.find("# TYPE marlin_client_latency summary"),
            std::string::npos)
      << text;
  // One 100 ms sample: every quantile and the sum are 0.1 s.
  EXPECT_NE(text.find("marlin_client_latency{quantile=\"0.5\"} 0.1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("marlin_client_latency{quantile=\"0.99\"} 0.1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("marlin_client_latency_count 1"), std::string::npos);
  EXPECT_NE(text.find("marlin_client_latency_sum 0.1"), std::string::npos);
}

TEST(TelemetryProm, SizeHistogramRendersAsSummary) {
  obs::MetricsRegistry reg;
  reg.sizes("replica.block_ops").record(40);
  reg.sizes("replica.block_ops").record(60);

  const std::string text = obs::metrics_to_prometheus(reg);
  EXPECT_NE(text.find("# TYPE marlin_replica_block_ops summary"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("marlin_replica_block_ops_count 2"), std::string::npos);
  EXPECT_NE(text.find("marlin_replica_block_ops_sum 100"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JSONL metric series
// ---------------------------------------------------------------------------

TEST(TelemetrySeries, LineParsesBackWithAllSections) {
  obs::MetricsRegistry reg;
  reg.counter("crypto.signs") += 7;
  reg.gauge("replica.view", "replica=2") = 4;
  reg.latency("client.latency").record(Duration::millis(10));
  reg.sizes("replica.block_ops").record(12);

  const std::string line = obs::metrics_series_line(1.5, reg);
  auto doc = json::parse(line);
  ASSERT_TRUE(doc.is_ok()) << line;
  const json::Object* obj = doc.value().object();
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(json::get_num(*obj, "t", 0), 1.5);

  const json::Object* counters = json::get_object(*obj, "counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(json::get_num(*counters, "crypto.signs", 0), 7);

  const json::Object* gauges = json::get_object(*obj, "gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(json::get_num(*gauges, "replica.view{replica=2}", 0), 4);

  const json::Object* latency = json::get_object(*obj, "latency_ms");
  ASSERT_NE(latency, nullptr);
  const json::Object* lat = json::get_object(*latency, "client.latency");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(json::get_num(*lat, "count", 0), 1);
  EXPECT_DOUBLE_EQ(json::get_num(*lat, "p99", 0), 10.0);

  const json::Object* sizes = json::get_object(*obj, "sizes");
  ASSERT_NE(sizes, nullptr);
  ASSERT_NE(json::get_object(*sizes, "replica.block_ops"), nullptr);
}

// ---------------------------------------------------------------------------
// NodeNetStats -> metrics naming parity with sim::Network::export_metrics
// ---------------------------------------------------------------------------

TEST(TelemetryNetStats, UsesSimExportNames) {
  net::NodeNetStats stats;
  stats.messages_sent = 4;
  stats.bytes_sent = 400;
  stats.messages_delivered = 3;
  stats.bytes_delivered = 300;
  stats.msgs_sent_by_kind[3] = 2;  // proposal slot
  stats.bytes_sent_by_kind[3] = 200;

  obs::MetricsRegistry reg;
  obs::net_stats_to_metrics(stats, reg, "node=3");
  EXPECT_EQ(reg.counter_value("net.messages_sent", "node=3"), 4u);
  EXPECT_EQ(reg.counter_value("net.bytes_sent", "node=3"), 400u);
  EXPECT_EQ(reg.counter_value("net.messages_delivered", "node=3"), 3u);
  EXPECT_EQ(reg.counter_value("net.bytes_delivered", "node=3"), 300u);
  EXPECT_EQ(reg.counter_value("net.bytes_sent", "kind=proposal"), 200u);
  // 5 per-node totals + 4 series for the one active kind slot; all-zero
  // kinds are skipped, not exported as zero series.
  EXPECT_EQ(reg.counters().size(), 9u);
}

// ---------------------------------------------------------------------------
// TelemetryServer on a live EventLoop
// ---------------------------------------------------------------------------

struct ServerFixture {
  realnet::EventLoop loop;
  std::unique_ptr<obs::TelemetryServer> server;
  std::uint16_t port = 0;
  std::thread thread;
  bool healthy = true;

  ServerFixture() {
    obs::TelemetryHandlers handlers;
    handlers.metrics = [] {
      return std::string("# TYPE marlin_up gauge\nmarlin_up 1\n");
    };
    handlers.status = [] { return std::string("{\"node\":7}"); };
    handlers.healthy = [this] { return healthy; };
    server = std::make_unique<obs::TelemetryServer>(loop, handlers);
    auto p = server->listen(0);
    EXPECT_TRUE(p.is_ok()) << p.status().message();
    port = p.value();
    thread = std::thread([this] { loop.run(); });
  }

  ~ServerFixture() {
    loop.post([this] {
      server->shutdown();
      loop.stop();
    });
    thread.join();
  }

  Result<realnet::HttpResponse> get(const std::string& path) {
    return realnet::http_get("127.0.0.1", port, path, Duration::seconds(2));
  }
};

TEST(TelemetryServer, ServesAllRoutes) {
  ServerFixture f;

  auto metrics = f.get("/metrics");
  ASSERT_TRUE(metrics.is_ok()) << metrics.status().message();
  EXPECT_EQ(metrics.value().status_code, 200);
  EXPECT_NE(metrics.value().body.find("marlin_up 1"), std::string::npos);

  auto status = f.get("/status");
  ASSERT_TRUE(status.is_ok());
  EXPECT_EQ(status.value().status_code, 200);
  EXPECT_EQ(status.value().body, "{\"node\":7}");

  auto healthz = f.get("/healthz");
  ASSERT_TRUE(healthz.is_ok());
  EXPECT_EQ(healthz.value().status_code, 200);
  EXPECT_EQ(healthz.value().body, "ok\n");

  auto index = f.get("/");
  ASSERT_TRUE(index.is_ok());
  EXPECT_EQ(index.value().status_code, 200);

  auto missing = f.get("/nope");
  ASSERT_TRUE(missing.is_ok());
  EXPECT_EQ(missing.value().status_code, 404);

  // Query strings are stripped before routing.
  auto with_query = f.get("/healthz?probe=1");
  ASSERT_TRUE(with_query.is_ok());
  EXPECT_EQ(with_query.value().status_code, 200);
}

TEST(TelemetryServer, UnhealthyReportsServiceUnavailable) {
  ServerFixture f;
  f.healthy = false;  // read by the handler on the loop thread per request
  auto healthz = f.get("/healthz");
  ASSERT_TRUE(healthz.is_ok());
  EXPECT_EQ(healthz.value().status_code, 503);
  EXPECT_EQ(healthz.value().body, "stalled\n");
}

TEST(TelemetryServer, OversizedRequestRejected) {
  ServerFixture f;
  auto resp = f.get("/" + std::string(10'000, 'a'));
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp.value().status_code, 400);
}

TEST(TelemetryServer, CountsRequestsServed) {
  ServerFixture f;
  for (int i = 0; i < 3; ++i) {
    auto resp = f.get("/healthz");
    ASSERT_TRUE(resp.is_ok());
  }
  // served_ is written on the loop thread; synchronize by posting a fence.
  std::atomic<bool> fenced{false};
  f.loop.post([&] { fenced = true; });
  while (!fenced) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GE(f.server->requests_served(), 3u);
}

// ---------------------------------------------------------------------------
// Event loop & timer wheel health instrumentation
// ---------------------------------------------------------------------------

TEST(TimerWheelHealth, RecordsFireDriftDeterministically) {
  realnet::TimerWheel wheel;
  LatencyHistogram drift;
  wheel.set_fire_drift_histogram(&drift);

  const TimePoint t0 = TimePoint::origin();
  wheel.schedule_at(t0 + Duration::millis(10), [] {});
  wheel.schedule_at(t0 + Duration::millis(20), [] {});
  wheel.advance(t0 + Duration::millis(25));

  EXPECT_EQ(wheel.fired(), 2u);
  ASSERT_EQ(drift.count(), 2u);
  // Timers fired 15 ms and 5 ms past their deadlines.
  EXPECT_EQ(drift.max(), Duration::millis(15));
  EXPECT_EQ(drift.min(), Duration::millis(5));
}

TEST(EventLoopHealth, CountsIterationsAndPostedTasks) {
  realnet::EventLoop loop;
  LatencyHistogram wake;
  loop.set_wake_histogram(&wake);

  std::atomic<int> ran{0};
  std::thread t([&] { loop.run(); });
  for (int i = 0; i < 32; ++i) {
    loop.post([&] { ++ran; });
  }
  while (ran.load() < 32) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  loop.post([&] { loop.stop(); });
  t.join();

  EXPECT_EQ(loop.posted_tasks_run(), 33u);  // 32 + the stop task
  EXPECT_GT(loop.iterations(), 0u);
  // Every posted task records its eventfd wake-to-run delay.
  EXPECT_EQ(wake.count(), 33u);
  EXPECT_GE(wake.max(), Duration::zero());
}

// ---------------------------------------------------------------------------
// Live cluster scrape (realnet)
// ---------------------------------------------------------------------------

runtime::ClusterConfig scrape_cluster_config() {
  runtime::ClusterConfig cfg;
  cfg.f = 1;
  cfg.seed = 7;
  cfg.clients.count = 2;
  cfg.clients.window = 8;
  cfg.clients.payload_size = 32;
  cfg.consensus.pacemaker.base_timeout = Duration::millis(500);
  cfg.consensus.pacemaker.timeout_jitter = 0.2;
  return cfg;
}

bool eventually(Duration patience, const std::function<bool()>& cond) {
  const TimePoint deadline = realnet::mono_now() + patience;
  while (realnet::mono_now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return cond();
}

TEST(RealClusterTelemetry, EveryReplicaAnswersAllEndpoints) {
  realnet::RealClusterOptions options;
  options.telemetry = true;
  realnet::RealCluster cluster(scrape_cluster_config(), options);
  ASSERT_TRUE(cluster.ok().is_ok()) << cluster.ok().message();
  cluster.start();

  ASSERT_TRUE(eventually(Duration::seconds(20), [&] {
    return cluster.client(0).completed().total() > 20;
  }));

  for (ReplicaId i = 0; i < cluster.n(); ++i) {
    const std::uint16_t port = cluster.telemetry_port(i);
    ASSERT_NE(port, 0) << "replica " << i;

    auto metrics = realnet::http_get("127.0.0.1", port, "/metrics",
                                     Duration::seconds(2));
    ASSERT_TRUE(metrics.is_ok()) << metrics.status().message();
    EXPECT_EQ(metrics.value().status_code, 200);
    EXPECT_NE(metrics.value().body.find("# TYPE marlin_replica_"),
              std::string::npos);
    EXPECT_NE(metrics.value().body.find("marlin_transport_"),
              std::string::npos);
    EXPECT_NE(metrics.value().body.find("marlin_loop_iterations"),
              std::string::npos);

    auto status = realnet::http_get("127.0.0.1", port, "/status",
                                    Duration::seconds(2));
    ASSERT_TRUE(status.is_ok());
    EXPECT_EQ(status.value().status_code, 200);
    auto doc = json::parse(status.value().body);
    ASSERT_TRUE(doc.is_ok()) << status.value().body;
    const json::Object* obj = doc.value().object();
    ASSERT_NE(obj, nullptr);
    EXPECT_EQ(json::get_num(*obj, "node", -1), static_cast<double>(i));
    EXPECT_EQ(json::get_str(*obj, "protocol", ""), "marlin");

    auto healthz = realnet::http_get("127.0.0.1", port, "/healthz",
                                     Duration::seconds(2));
    ASSERT_TRUE(healthz.is_ok());
    EXPECT_EQ(healthz.value().status_code, 200);
  }

  // Live cluster-wide snapshot merges every replica: committed height
  // gauges are re-exported per replica like runtime::Cluster does.
  obs::MetricsRegistry merged = cluster.sample_metrics();
  for (ReplicaId i = 0; i < cluster.n(); ++i) {
    const std::string label = "replica=" + std::to_string(i);
    EXPECT_GT(merged.gauge_value("replica.committed_height", label), 0)
        << label;
  }
  EXPECT_GT(merged.counter_value("replica.committed_blocks"), 0u);
  EXPECT_GT(merged.latency("client.latency").count(), 0u);

  // The live series line carries all four sections on the shared schema.
  const std::string line = obs::metrics_series_line(1.0, merged);
  auto doc = json::parse(line);
  ASSERT_TRUE(doc.is_ok());
  const json::Object* obj = doc.value().object();
  ASSERT_NE(obj, nullptr);
  for (const char* section : {"counters", "gauges", "latency_ms", "sizes"}) {
    EXPECT_NE(json::get_object(*obj, section), nullptr) << section;
  }

  cluster.stop();
}

TEST(RealClusterTelemetry, TelemetryOffByDefault) {
  realnet::RealCluster cluster(scrape_cluster_config());
  ASSERT_TRUE(cluster.ok().is_ok());
  for (ReplicaId i = 0; i < cluster.n(); ++i) {
    EXPECT_EQ(cluster.telemetry_port(i), 0);
  }
}

}  // namespace
}  // namespace marlin
