// Deterministic in-process harness for protocol state machines: n replica
// instances wired through a FIFO message bus with injectable faults. No
// simulator, no timing — tests control exactly which messages flow, in
// which order, and when view timers "fire". This is what lets unit tests
// force the paper's view-change cases (V1/V2/V3, R1/R2/R3) precisely.
//
// Byzantine senders use the same ByzantineBox the runtime installs
// (faults/byzantine.h): set_byzantine(r, mode) reshapes replica r's
// outgoing envelopes at the bus boundary, so tests exercise the exact
// wire-level misbehaviour the chaos harness injects.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "consensus/hotstuff.h"
#include "consensus/marlin.h"
#include "faults/byzantine.h"

namespace marlin::consensus::testing {

struct BusMessage {
  ReplicaId from;
  ReplicaId to;
  types::Envelope envelope;
  /// Set by post_bypassing: skips crash/drop filtering (test injections
  /// that impersonate a muted replica — the Byzantine case).
  bool bypass = false;
};

class ProtocolHarness;

/// Environment adapter: routes protocol output onto the harness bus.
class BusEnv final : public ProtocolEnv {
 public:
  BusEnv(ProtocolHarness& harness, ReplicaId id)
      : harness_(harness), id_(id) {}

  void send(ReplicaId to, const types::Envelope& env) override;
  void broadcast(const types::Envelope& env) override;
  void deliver(const types::Block& block,
               const std::vector<types::Operation>& executable) override {
    // Record the block with its *executed* ops (exactly-once view).
    types::Block copy = block;
    copy.ops = executable;
    delivered.push_back(std::move(copy));
  }
  void entered_view(ViewNumber v) override { views_entered.push_back(v); }
  void progressed() override { ++progress_events; }
  void charge_signs(std::uint32_t c) override { signs += c; }
  void charge_verifies(std::uint32_t c) override { verifies += c; }
  void charge_hash_bytes(std::size_t b) override { hash_bytes += b; }

  std::vector<types::Block> delivered;
  std::vector<ViewNumber> views_entered;
  std::uint64_t progress_events = 0;
  std::uint64_t signs = 0;
  std::uint64_t verifies = 0;
  std::uint64_t hash_bytes = 0;

 private:
  ProtocolHarness& harness_;
  ReplicaId id_;
};

enum class Kind { kMarlin, kHotStuff };

class ProtocolHarness {
 public:
  explicit ProtocolHarness(Kind kind, std::uint32_t f = 1,
                           ReplicaConfig overrides = {}) {
    const std::uint32_t n = 3 * f + 1;
    suite_ = crypto::make_fast_suite(n, to_bytes("harness-seed"));
    for (ReplicaId r = 0; r < n; ++r) {
      envs_.push_back(std::make_unique<BusEnv>(*this, r));
      ReplicaConfig cfg = overrides;
      cfg.id = r;
      cfg.quorum = QuorumParams::for_f(f);
      if (kind == Kind::kMarlin) {
        replicas_.push_back(
            std::make_unique<MarlinReplica>(cfg, *suite_, *envs_.back()));
      } else {
        replicas_.push_back(
            std::make_unique<HotStuffReplica>(cfg, *suite_, *envs_.back()));
      }
    }
    crashed_.assign(n, false);
    byzantine_.resize(n);
  }

  std::uint32_t n() const { return static_cast<std::uint32_t>(replicas_.size()); }

  ReplicaBase& replica(ReplicaId i) { return *replicas_[i]; }
  MarlinReplica& marlin(ReplicaId i) {
    return *static_cast<MarlinReplica*>(replicas_[i].get());
  }
  HotStuffReplica& hotstuff(ReplicaId i) {
    return *static_cast<HotStuffReplica*>(replicas_[i].get());
  }
  BusEnv& env(ReplicaId i) { return *envs_[i]; }
  const crypto::SignatureSuite& suite() const { return *suite_; }

  void start_all() {
    for (auto& r : replicas_) r->start();
  }

  /// Push a message onto the bus (tests can forge anything). A sender with
  /// an active ByzantineBox has its envelope transformed — possibly into
  /// nothing — exactly as the runtime's ReplicaProcess::send would.
  void post(ReplicaId from, ReplicaId to, types::Envelope env) {
    if (from < byzantine_.size() && byzantine_[from].active()) {
      auto out = byzantine_[from].transform(env, from, to);
      if (!out) return;
      env = std::move(*out);
    }
    queue_.push_back(BusMessage{from, to, std::move(env), false});
  }

  /// Forged injection that ignores crash/drop filters (Byzantine sender).
  void post_bypassing(ReplicaId from, ReplicaId to, types::Envelope env) {
    queue_.push_back(BusMessage{from, to, std::move(env), true});
  }

  /// Drop predicate: return true to drop (applied at delivery time).
  void set_drop(std::function<bool(const BusMessage&)> drop) {
    drop_ = std::move(drop);
  }

  void crash(ReplicaId r) { crashed_[r] = true; }

  /// Installs wire-level Byzantine behaviour on replica r's outgoing
  /// messages (kHonest reverts it).
  void set_byzantine(ReplicaId r, faults::ByzantineMode mode) {
    byzantine_[r].set_mode(mode);
  }
  faults::ByzantineBox& byzantine(ReplicaId r) { return byzantine_[r]; }

  /// Delivers one queued message; returns false when the bus is idle.
  bool step() {
    while (!queue_.empty()) {
      BusMessage m = std::move(queue_.front());
      queue_.pop_front();
      if (!m.bypass) {
        if (crashed_[m.from] || crashed_[m.to]) continue;
        if (drop_ && drop_(m)) continue;
      }
      if (crashed_[m.to]) continue;
      replicas_[m.to]->handle_message(m.from, m.envelope);
      return true;
    }
    return false;
  }

  /// Pumps the bus dry (bounded).
  std::size_t deliver_all(std::size_t max_steps = 100000) {
    std::size_t steps = 0;
    while (steps < max_steps && step()) ++steps;
    return steps;
  }

  void submit_to_all(const types::Operation& op) {
    for (std::uint32_t r = 0; r < n(); ++r) {
      if (!crashed_[r]) replicas_[r]->submit(op);
    }
  }

  void timeout(ReplicaId r) {
    if (!crashed_[r]) replicas_[r]->on_view_timeout();
  }

  void timeout_all() {
    for (std::uint32_t r = 0; r < n(); ++r) timeout(r);
    // View advancement is quorum-gated on TimeoutNotice broadcasts (see
    // ReplicaBase::on_view_timeout). Deliver the notices ahead of older
    // queued traffic so "everyone timed out" resolves into "everyone
    // advanced" immediately — the semantics these unit tests drive —
    // instead of letting still-queued old-view messages commit first.
    for (std::size_t i = 0; i < queue_.size();) {
      if (queue_[i].envelope.kind == MsgKind::kTimeoutNotice) {
        BusMessage m = std::move(queue_[i]);
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        if (!m.bypass) {
          if (crashed_[m.from] || crashed_[m.to]) continue;
          if (drop_ && drop_(m)) continue;
        }
        if (!crashed_[m.to]) replicas_[m.to]->handle_message(m.from, m.envelope);
      } else {
        ++i;
      }
    }
  }

  /// Total blocks delivered at replica r.
  const std::vector<types::Block>& delivered(ReplicaId r) {
    return envs_[r]->delivered;
  }

  bool all_consistent() {
    for (std::uint32_t i = 0; i < n(); ++i) {
      if (replicas_[i]->safety_violated()) return false;
      for (std::uint32_t j = i + 1; j < n(); ++j) {
        const auto& a = *replicas_[i];
        const auto& b = *replicas_[j];
        const auto& lo = a.committed_height() <= b.committed_height() ? a : b;
        const auto& hi = a.committed_height() <= b.committed_height() ? b : a;
        if (lo.committed_height() == 0) continue;
        if (!hi.store().extends(hi.committed_hash(), lo.committed_hash())) {
          return false;
        }
      }
    }
    return true;
  }

  std::size_t queued() const { return queue_.size(); }
  std::deque<BusMessage>& queue() { return queue_; }

 private:
  std::unique_ptr<crypto::SignatureSuite> suite_;
  std::vector<std::unique_ptr<BusEnv>> envs_;
  std::vector<std::unique_ptr<ReplicaBase>> replicas_;
  std::deque<BusMessage> queue_;
  std::vector<bool> crashed_;
  std::vector<faults::ByzantineBox> byzantine_;
  std::function<bool(const BusMessage&)> drop_;
};

inline void BusEnv::send(ReplicaId to, const types::Envelope& env) {
  harness_.post(id_, to, env);
}

inline void BusEnv::broadcast(const types::Envelope& env) {
  for (ReplicaId r = 0; r < harness_.n(); ++r) harness_.post(id_, r, env);
}

/// Convenience: make a small operation.
inline types::Operation op_of(ClientId c, RequestId r, std::size_t size = 16) {
  return types::Operation{c, r, Bytes(size, static_cast<std::uint8_t>(r))};
}

/// Decodes a bus message body if it matches the kind; nullopt otherwise.
template <typename M>
std::optional<M> peek(const BusMessage& m, types::MsgKind kind) {
  if (m.envelope.kind != kind) return std::nullopt;
  auto r = types::open_envelope<M>(m.envelope);
  if (!r.is_ok()) return std::nullopt;
  return std::move(r).take();
}

}  // namespace marlin::consensus::testing
