// Tests for the threshold-signature instantiation of quorum certificates
// (paper §III): suite-level combine/verify, protocol runs with constant-
// size QCs, wire-size comparison against signature groups, and full
// simulated-cluster operation including view changes.
#include <gtest/gtest.h>

#include "protocol_harness.h"
#include "runtime/experiment.h"

namespace marlin {
namespace {

using consensus::testing::BusMessage;
using consensus::testing::Kind;
using consensus::testing::op_of;
using consensus::testing::peek;
using consensus::testing::ProtocolHarness;

// ---------------------------------------------------------------------------
// Suite-level combine / verify
// ---------------------------------------------------------------------------

class ThresholdSuite : public ::testing::Test {
 protected:
  void SetUp() override {
    suite_ = crypto::make_fast_suite(7, to_bytes("th"));
    msg_ = to_bytes("digest under test");
  }

  std::pair<ReplicaId, Bytes> share(ReplicaId r) {
    return {r, suite_->signer(r)->sign(msg_)};
  }

  std::unique_ptr<crypto::SignatureSuite> suite_;
  Bytes msg_;
};

TEST_F(ThresholdSuite, CombineAndVerify) {
  auto combined = suite_->threshold_combine(
      msg_, {share(0), share(1), share(2), share(3), share(4)}, 5);
  ASSERT_TRUE(combined.has_value());
  EXPECT_EQ(combined->size(), crypto::kSignatureSize);
  EXPECT_TRUE(suite_->threshold_verify(msg_, *combined));
}

TEST_F(ThresholdSuite, BelowThresholdFails) {
  EXPECT_FALSE(
      suite_->threshold_combine(msg_, {share(0), share(1)}, 3).has_value());
}

TEST_F(ThresholdSuite, InvalidSharesDoNotCount) {
  auto bad = share(2);
  bad.second[0] ^= 0x01;
  EXPECT_FALSE(
      suite_->threshold_combine(msg_, {share(0), share(1), bad}, 3)
          .has_value());
}

TEST_F(ThresholdSuite, DuplicateSharesDoNotCount) {
  EXPECT_FALSE(
      suite_->threshold_combine(msg_, {share(0), share(0), share(0)}, 3)
          .has_value());
}

TEST_F(ThresholdSuite, VerifyRejectsWrongMessage) {
  auto combined =
      suite_->threshold_combine(msg_, {share(0), share(1), share(2)}, 3);
  ASSERT_TRUE(combined.has_value());
  EXPECT_FALSE(suite_->threshold_verify(to_bytes("other"), *combined));
}

TEST_F(ThresholdSuite, VerifyRejectsTamperedSignature) {
  auto combined =
      suite_->threshold_combine(msg_, {share(0), share(1), share(2)}, 3);
  ASSERT_TRUE(combined.has_value());
  (*combined)[10] ^= 0xff;
  EXPECT_FALSE(suite_->threshold_verify(msg_, *combined));
}

TEST_F(ThresholdSuite, EcdsaSuiteSupportsThresholdToo) {
  auto ecdsa = crypto::make_ecdsa_suite(4, to_bytes("th-ecdsa"));
  const Bytes m = to_bytes("m");
  std::vector<std::pair<ReplicaId, Bytes>> parts;
  for (ReplicaId r = 0; r < 3; ++r) {
    parts.emplace_back(r, ecdsa->signer(r)->sign(m));
  }
  auto combined = ecdsa->threshold_combine(m, parts, 3);
  ASSERT_TRUE(combined.has_value());
  EXPECT_TRUE(ecdsa->threshold_verify(m, *combined));
}

// ---------------------------------------------------------------------------
// Protocol behaviour in threshold mode
// ---------------------------------------------------------------------------

class ThresholdProtocol : public ::testing::TestWithParam<Kind> {};

INSTANTIATE_TEST_SUITE_P(Protocols, ThresholdProtocol,
                         ::testing::Values(Kind::kMarlin, Kind::kHotStuff),
                         [](const auto& info) {
                           return info.param == Kind::kMarlin ? "Marlin"
                                                              : "HotStuff";
                         });

TEST_P(ThresholdProtocol, CommitsWithConstantSizeQcs) {
  consensus::ReplicaConfig cfg;
  cfg.use_threshold_sigs = true;
  ProtocolHarness h(GetParam(), 1, cfg);

  bool saw_threshold_qc = false;
  bool saw_group_qc = false;
  h.set_drop([&](const BusMessage& m) {
    if (auto n = peek<types::QcNoticeMsg>(m, types::MsgKind::kQcNotice)) {
      if (n->qc.is_threshold_form()) {
        saw_threshold_qc = true;
      } else if (!n->qc.sigs.parts.empty()) {
        saw_group_qc = true;
      }
    }
    return false;
  });

  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  for (ReplicaId r = 0; r < h.n(); ++r) {
    EXPECT_EQ(h.replica(r).committed_height(), 1u) << "replica " << r;
  }
  EXPECT_TRUE(saw_threshold_qc);
  EXPECT_FALSE(saw_group_qc);
  EXPECT_TRUE(h.all_consistent());
}

TEST_P(ThresholdProtocol, ViewChangeWorksInThresholdMode) {
  consensus::ReplicaConfig cfg;
  cfg.use_threshold_sigs = true;
  ProtocolHarness h(GetParam(), 1, cfg);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  h.crash(1);
  h.submit_to_all(op_of(1, 2));
  h.timeout(0);
  h.timeout(2);
  h.timeout(3);
  h.deliver_all();
  for (ReplicaId r : {0u, 2u, 3u}) {
    EXPECT_EQ(h.replica(r).committed_height(), 2u) << "replica " << r;
  }
  EXPECT_TRUE(h.all_consistent());
}

TEST(ThresholdProtocolMarlin, UnhappyViewChangeInThresholdMode) {
  consensus::ReplicaConfig cfg;
  cfg.use_threshold_sigs = true;
  cfg.disable_happy_path = true;
  ProtocolHarness h(Kind::kMarlin, 1, cfg);
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  h.submit_to_all(op_of(1, 2));
  h.timeout_all();
  h.deliver_all();
  EXPECT_EQ(h.marlin(2).unhappy_view_changes(), 1u);
  for (ReplicaId r = 0; r < h.n(); ++r) {
    EXPECT_EQ(h.replica(r).committed_height(), 2u);
  }
  EXPECT_TRUE(h.all_consistent());
}

TEST(ThresholdWireSize, QcsShrinkAtScale) {
  // The bandwidth argument: a 31-replica sig-group QC carries 21
  // signatures; the threshold form always carries one.
  auto wire_size = [](bool threshold, std::uint32_t f) {
    consensus::ReplicaConfig cfg;
    cfg.use_threshold_sigs = threshold;
    ProtocolHarness h(Kind::kMarlin, f, cfg);
    std::size_t commit_notice_bytes = 0;
    h.set_drop([&](const BusMessage& m) {
      if (auto n = peek<types::QcNoticeMsg>(m, types::MsgKind::kQcNotice)) {
        if (n->phase == types::Phase::kCommit && commit_notice_bytes == 0) {
          commit_notice_bytes = m.envelope.serialize().size();
        }
      }
      return false;
    });
    h.start_all();
    h.submit_to_all(op_of(1, 1));
    h.deliver_all();
    return commit_notice_bytes;
  };
  const std::size_t group_f3 = wire_size(false, 3);    // n=10, quorum 7
  const std::size_t threshold_f3 = wire_size(true, 3);
  ASSERT_GT(group_f3, 0u);
  ASSERT_GT(threshold_f3, 0u);
  EXPECT_GT(group_f3, threshold_f3 + 5 * crypto::kSignatureSize);
  // And the threshold form's size is ~independent of n.
  EXPECT_NEAR(static_cast<double>(wire_size(true, 1)),
              static_cast<double>(threshold_f3), 16.0);
}

// ---------------------------------------------------------------------------
// Simulated cluster in threshold mode (costs charged)
// ---------------------------------------------------------------------------

TEST(ThresholdCluster, RunsEndToEndAndPairingCostsBite) {
  auto run = [](bool threshold) {
    runtime::ClusterConfig cfg;
    cfg.f = 1;
    cfg.clients.count = 8;
    cfg.clients.window = 32;
    cfg.consensus.max_batch_ops = 200;  // small blocks → QC costs dominate
    cfg.consensus.use_threshold_sigs = threshold;
    cfg.seed = 77;
    return runtime::run_experiment(runtime::throughput_options(
        cfg, Duration::seconds(2), Duration::seconds(6)));
  };
  const auto group = run(false);
  const auto threshold = run(true);
  EXPECT_TRUE(group.safety_ok);
  EXPECT_TRUE(threshold.safety_ok);
  EXPECT_GT(threshold.throughput_ops, 10.0);
  // At n = 4 with fast links, pairing costs make threshold mode slower —
  // the paper's observation for small n.
  EXPECT_GT(group.throughput_ops, threshold.throughput_ops);
}

}  // namespace
}  // namespace marlin
