// Tests for the runtime layer: the pacemaker policy, client retransmission
// behaviour, the block-fetch (catch-up) protocol, CPU-cost accounting, and
// the traffic counters the Table I bench relies on.
#include <gtest/gtest.h>

#include "runtime/cluster.h"
#include "runtime/pacemaker.h"

namespace marlin::runtime {
namespace {

// ---------------------------------------------------------------------------
// Pacemaker policy
// ---------------------------------------------------------------------------

TEST(Pacemaker, BaseTimeoutWhenHealthy) {
  PacemakerConfig cfg;
  cfg.base_timeout = Duration::seconds(2);
  Pacemaker pm(cfg);
  EXPECT_EQ(pm.view_timeout(), Duration::seconds(2));
}

TEST(Pacemaker, ExponentialBackoffOnConsecutiveFailures) {
  PacemakerConfig cfg;
  cfg.base_timeout = Duration::seconds(1);
  cfg.backoff_factor = 2.0;
  cfg.max_timeout = Duration::seconds(10);
  Pacemaker pm(cfg);

  pm.on_view_entered();
  EXPECT_TRUE(pm.should_advance_on_fire());  // view 1 failed
  EXPECT_EQ(pm.view_timeout(), Duration::seconds(2));
  pm.on_view_entered();
  EXPECT_TRUE(pm.should_advance_on_fire());  // view 2 failed
  EXPECT_EQ(pm.view_timeout(), Duration::seconds(4));
  EXPECT_EQ(pm.consecutive_failures(), 2u);
}

TEST(Pacemaker, BackoffCapsAtMax) {
  PacemakerConfig cfg;
  cfg.base_timeout = Duration::seconds(1);
  cfg.max_timeout = Duration::seconds(5);
  Pacemaker pm(cfg);
  for (int i = 0; i < 10; ++i) {
    pm.on_view_entered();
    (void)pm.should_advance_on_fire();
  }
  EXPECT_EQ(pm.view_timeout(), Duration::seconds(5));
}

TEST(Pacemaker, ProgressResetsBackoffAndDefersAdvance) {
  PacemakerConfig cfg;
  cfg.base_timeout = Duration::seconds(1);
  Pacemaker pm(cfg);
  pm.on_view_entered();
  (void)pm.should_advance_on_fire();  // one failure
  pm.on_view_entered();
  pm.on_progress();
  EXPECT_FALSE(pm.should_advance_on_fire());  // progressed → just re-arm
  EXPECT_EQ(pm.view_timeout(), Duration::seconds(1));  // backoff reset
}

TEST(Pacemaker, RotatingModeAlwaysAdvances) {
  PacemakerConfig cfg;
  cfg.rotate_on_timer = true;
  cfg.rotation_interval = Duration::millis(750);
  Pacemaker pm(cfg);
  pm.on_view_entered();
  pm.on_progress();
  EXPECT_TRUE(pm.should_advance_on_fire());  // rotates despite progress
  EXPECT_EQ(pm.view_timeout(), Duration::millis(750));
}

// ---------------------------------------------------------------------------
// Client retransmission
// ---------------------------------------------------------------------------

TEST(ClientRetransmit, RecoversFromEarlyRequestLoss) {
  ClusterConfig cfg;
  cfg.f = 1;
  cfg.clients.count = 1;
  cfg.clients.window = 2;
  cfg.clients.max_requests = 6;
  cfg.clients.retransmit_timeout = Duration::millis(900);
  cfg.consensus.pacemaker.base_timeout = Duration::seconds(2);
  cfg.seed = 5;

  sim::Simulator sim(cfg.seed);
  Cluster cluster(sim, cfg);
  // Drop every client → replica message for the first 2 seconds.
  const sim::NodeId client_node = cluster.n();  // first client node id
  cluster.network().set_filter([client_node](sim::NodeId from, sim::NodeId) {
    return from != client_node;
  });
  cluster.start();
  sim.run_for(Duration::seconds(2));
  EXPECT_EQ(cluster.client(0).latency().count(), 0u);

  cluster.network().set_filter(nullptr);
  sim.run_for(Duration::seconds(15));
  EXPECT_EQ(cluster.client(0).latency().count(), 6u);
  EXPECT_GT(cluster.client(0).retransmissions(), 0u);
  EXPECT_EQ(cluster.client(0).in_flight(), 0u);
}

TEST(ClientRetransmit, NoRetransmissionsOnHealthyNetwork) {
  ClusterConfig cfg;
  cfg.f = 1;
  cfg.clients.count = 2;
  cfg.clients.window = 4;
  cfg.clients.max_requests = 10;
  cfg.seed = 6;
  sim::Simulator sim(cfg.seed);
  Cluster cluster(sim, cfg);
  cluster.start();
  sim.run_for(Duration::seconds(10));
  for (ClientId c = 0; c < 2; ++c) {
    EXPECT_EQ(cluster.client(c).retransmissions(), 0u);
    EXPECT_EQ(cluster.client(c).latency().count(), 10u);
  }
}

// ---------------------------------------------------------------------------
// Block fetch / catch-up
// ---------------------------------------------------------------------------

TEST(Fetch, IsolatedReplicaCatchesUpViaFetch) {
  ClusterConfig cfg;
  cfg.f = 1;
  cfg.clients.count = 2;
  cfg.clients.window = 4;
  cfg.seed = 7;
  cfg.consensus.pacemaker.base_timeout = Duration::seconds(30);  // no view churn

  sim::Simulator sim(cfg.seed);
  Cluster cluster(sim, cfg);
  cluster.start();
  sim.run_for(Duration::seconds(1));

  // Replica 3 misses all proposals for a while (receives only the DECIDE
  // notices and later traffic once healed).
  cluster.network().set_filter([](sim::NodeId, sim::NodeId to) {
    return to != 3;
  });
  sim.run_for(Duration::seconds(4));
  const Height others = cluster.replica(0).protocol().committed_height();
  const Height behind = cluster.replica(3).protocol().committed_height();
  EXPECT_LT(behind, others);

  cluster.network().set_filter(nullptr);
  sim.run_for(Duration::seconds(8));
  // Replica 3 fetched the missing bodies and committed the same chain.
  EXPECT_GE(cluster.replica(3).protocol().committed_height(), others);
  EXPECT_TRUE(cluster.committed_heights_consistent());
  EXPECT_FALSE(cluster.any_safety_violation());
}

// ---------------------------------------------------------------------------
// Cost accounting
// ---------------------------------------------------------------------------

TEST(CostAccounting, CpuBusyTimeAccrues) {
  ClusterConfig cfg;
  cfg.f = 1;
  cfg.clients.count = 2;
  cfg.clients.window = 8;
  cfg.seed = 8;
  sim::Simulator sim(cfg.seed);
  Cluster cluster(sim, cfg);
  cluster.start();
  sim.run_for(Duration::seconds(5));
  // The leader (replica 1 in view 1) works strictly harder than followers.
  const Duration leader_busy = cluster.replica(1).cpu_busy();
  const Duration follower_busy = cluster.replica(3).cpu_busy();
  EXPECT_GT(leader_busy.as_nanos(), 0);
  EXPECT_GT(follower_busy.as_nanos(), 0);
  EXPECT_GT(leader_busy, follower_busy);
}

TEST(CostAccounting, HigherCryptoCostsLowerThroughput) {
  auto run = [](Duration verify_cost) {
    ClusterConfig cfg;
    cfg.f = 1;
    cfg.clients.count = 8;
    cfg.clients.window = 64;
    cfg.consensus.max_batch_ops = 100;  // many small blocks → verify-heavy
    cfg.crypto_costs.verify = verify_cost;
    cfg.seed = 9;
    sim::Simulator sim(cfg.seed);
    Cluster cluster(sim, cfg);
    cluster.set_measurement_window(TimePoint::origin() + Duration::seconds(2),
                                   TimePoint::origin() + Duration::seconds(8));
    cluster.start();
    sim.run_until(TimePoint::origin() + Duration::seconds(9));
    return cluster.client_throughput();
  };
  const double cheap = run(Duration::micros(20));
  const double pricey = run(Duration::millis(12));
  EXPECT_GT(cheap, pricey * 1.1);
}

TEST(CostAccounting, StorageCheckpointChargesTime) {
  ClusterConfig cfg;
  cfg.f = 1;
  cfg.clients.count = 2;
  cfg.clients.window = 8;
  cfg.consensus.checkpoint_interval = 10;
  cfg.seed = 10;
  sim::Simulator sim(cfg.seed);
  Cluster cluster(sim, cfg);
  cluster.start();
  sim.run_for(Duration::seconds(10));
  EXPECT_GT(cluster.replica(0).checkpoints_run(), 2u);
}

// ---------------------------------------------------------------------------
// Traffic counters
// ---------------------------------------------------------------------------

TEST(Traffic, ResetClearsCounters) {
  ClusterConfig cfg;
  cfg.f = 1;
  cfg.clients.count = 1;
  cfg.clients.window = 2;
  cfg.seed = 11;
  sim::Simulator sim(cfg.seed);
  Cluster cluster(sim, cfg);
  cluster.start();
  sim.run_for(Duration::seconds(3));
  const auto proposal_idx =
      static_cast<std::size_t>(types::MsgKind::kProposal);
  EXPECT_GT(cluster.network().stats(1).msgs_sent_by_kind[proposal_idx], 0u);
  cluster.network().reset_stats();
  EXPECT_EQ(cluster.network().stats(1).msgs_sent_by_kind[proposal_idx], 0u);
}

TEST(Traffic, ViewChangeBytesScaleLinearlyPerReplica) {
  // The linearity claim, measured: per-replica view-change bytes grow far
  // slower than n (they grow only with QC size under sig-groups).
  auto per_replica_bytes = [](std::uint32_t f) {
    ClusterConfig cfg;
    cfg.f = f;
    cfg.clients.count = 1;
    cfg.clients.window = 2;
    cfg.consensus.max_batch_ops = 16;
    cfg.seed = 12;
    cfg.consensus.pacemaker.base_timeout = Duration::millis(600);
    sim::Simulator sim(cfg.seed);
    Cluster cluster(sim, cfg);
    cluster.start();
    sim.run_for(Duration::seconds(2));
    cluster.crash_replica(cluster.current_leader());
    cluster.network().reset_stats();
    sim.run_for(Duration::seconds(5));
    std::uint64_t vc_bytes = 0;
    for (ReplicaId r = 0; r < cluster.n(); ++r) {
      const auto& t = cluster.network().stats(r);
      vc_bytes += t.bytes_sent_by_kind[static_cast<std::size_t>(
          types::MsgKind::kViewChange)];
      vc_bytes += t.bytes_sent_by_kind[static_cast<std::size_t>(
          types::MsgKind::kQcNotice)];
    }
    return static_cast<double>(vc_bytes) / cluster.n();
  };
  const double at_f1 = per_replica_bytes(1);
  const double at_f5 = per_replica_bytes(5);
  ASSERT_GT(at_f1, 0);
  // n grew 4×; a quadratic protocol's per-replica bytes would grow ~4×.
  // Linear-with-sig-group-QCs should stay well under that.
  EXPECT_LT(at_f5, at_f1 * 16);
  EXPECT_GT(at_f5, 0);
}

}  // namespace
}  // namespace marlin::runtime
