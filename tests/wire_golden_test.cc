// Golden wire-format tests: exact byte-level stability of the codec and
// the consensus wire messages. These exist so an accidental format change
// (field reorder, width change, varint tweak) fails loudly — on a protocol
// whose signatures and hashes are computed over these bytes, silent format
// drift is a consensus fork.
//
// Also: exhaustive partial-order law checks for the rank relation, and
// Byzantine vote-stuffing checks on quorum formation.
#include <gtest/gtest.h>

#include "protocol_harness.h"

namespace marlin {
namespace {

using types::Block;
using types::Hash256;
using types::Justify;
using types::QcType;
using types::QuorumCert;

// ---------------------------------------------------------------------------
// Codec golden bytes
// ---------------------------------------------------------------------------

TEST(WireGolden, PrimitiveEncodings) {
  Writer w;
  w.u8(0x01);
  w.u16(0x0203);
  w.u32(0x04050607);
  w.u64(0x08090a0b0c0d0e0fULL);
  w.boolean(true);
  w.varint(300);
  w.str("ab");
  EXPECT_EQ(to_hex(w.buffer()),
            "01"              // u8
            "0302"            // u16 LE
            "07060504"        // u32 LE
            "0f0e0d0c0b0a0908"  // u64 LE
            "01"              // bool
            "ac02"            // varint 300
            "026162");        // len=2, "ab"
}

TEST(WireGolden, GenesisBlockHashIsStable) {
  // The genesis hash anchors every chain; if this changes, nothing
  // interoperates. Computed once and pinned.
  EXPECT_EQ(Block::genesis().hash().to_hex(),
            crypto::Sha256::digest([] {
              Writer w;
              w.str("marlin.block");
              Block::genesis().encode(w);
              return std::move(w).take();
            }())
                .to_hex());
  // Self-consistency plus explicit prefix pin (first 8 bytes).
  const std::string hex = Block::genesis().hash().to_hex();
  EXPECT_EQ(hex.size(), 64u);
  EXPECT_EQ(Block::genesis().hash().short_hex(), hex.substr(0, 8));
}

TEST(WireGolden, BlockEncodingLayout) {
  Block b;
  b.parent_link = Hash256{};  // zero
  b.parent_view = 1;
  b.view = 2;
  b.height = 3;
  b.virtual_block = false;
  b.ops = {types::Operation{7, 9, to_bytes("x")}};
  const Bytes enc = encode_to_bytes(b);
  // 32 (pl) + 8 + 8 + 8 + 1 (virtual) + 1 (varint op count)
  //  + [4 (client) + 8 (request) + 1 (len) + 1 (payload)] + 1 (justify tag)
  EXPECT_EQ(enc.size(), 32u + 8 + 8 + 8 + 1 + 1 + (4 + 8 + 1 + 1) + 1);
  // Field positions: pview at offset 32, view at 40, height at 48.
  EXPECT_EQ(enc[32], 1);
  EXPECT_EQ(enc[40], 2);
  EXPECT_EQ(enc[48], 3);
  EXPECT_EQ(enc.back(), 0);  // empty justify tag
}

TEST(WireGolden, VoteDigestIsStable) {
  // The digest voters sign: any change to its derivation breaks QC
  // verification between versions. Pin the full preimage layout.
  const Hash256 block_hash = crypto::Sha256::digest(to_bytes("blk"));
  const Hash256 d1 = types::vote_digest("marlin", QcType::kPrepare, 5,
                                        block_hash, 5, 9, 4, false);
  // Reconstruct the documented preimage by hand.
  Writer w;
  w.str("marlin.vote");
  w.str("marlin");
  w.u8(1);  // kPrepare
  w.u64(5);
  w.raw(block_hash.view());
  w.u64(5);
  w.u64(9);
  w.u64(4);
  w.boolean(false);
  EXPECT_EQ(d1, crypto::Sha256::digest(w.buffer()));
}

TEST(WireGolden, QuorumCertEncodingRoundTripsByteExact) {
  QuorumCert qc;
  qc.type = QcType::kPrePrepare;
  qc.view = 11;
  qc.block_hash = crypto::Sha256::digest(to_bytes("b"));
  qc.block_view = 11;
  qc.height = 7;
  qc.pview = 10;
  qc.virtual_block = true;
  qc.sigs.parts.push_back({3, Bytes(crypto::kSignatureSize, 0xee)});
  const Bytes enc = encode_to_bytes(qc);
  auto back = decode_from_bytes<QuorumCert>(enc);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(encode_to_bytes(back.value()), enc);
}

TEST(WireGolden, EnvelopeKindByteLeads) {
  types::FetchRequestMsg req{Hash256{}, 0};
  const Bytes wire =
      types::make_envelope(types::MsgKind::kFetchRequest, req).serialize();
  EXPECT_EQ(wire[0], static_cast<std::uint8_t>(types::MsgKind::kFetchRequest));
}

// ---------------------------------------------------------------------------
// Rank: exhaustive partial-order laws
// ---------------------------------------------------------------------------

TEST(RankLaws, ExhaustiveTotalPreorder) {
  // Enumerate every (type, view, height) in small bounds and verify the
  // comparison is a total preorder: reflexive, antisymmetric as a
  // comparison, and transitive — including the PRE-PREPARE equal-rank
  // subtleties.
  std::vector<QuorumCert> all;
  for (int t = 0; t < 4; ++t) {
    for (ViewNumber v = 0; v < 4; ++v) {
      for (Height h = 0; h < 4; ++h) {
        QuorumCert qc;
        qc.type = static_cast<QcType>(t);
        qc.view = v;
        qc.height = h;
        all.push_back(qc);
      }
    }
  }
  for (const auto& a : all) {
    EXPECT_EQ(types::compare_rank(a, a), 0);
    for (const auto& b : all) {
      EXPECT_EQ(types::compare_rank(a, b), -types::compare_rank(b, a));
      for (const auto& c : all) {
        if (types::compare_rank(a, b) >= 0 && types::compare_rank(b, c) >= 0) {
          ASSERT_GE(types::compare_rank(a, c), 0);
        }
      }
    }
  }
}

TEST(RankLaws, EqualRankClassesAreExactlyAsSpecified) {
  // Two QCs are rank-equal iff same view and (both PRE-PREPARE, or both in
  // the high class with equal height).
  auto qc = [](QcType t, ViewNumber v, Height h) {
    QuorumCert q;
    q.type = t;
    q.view = v;
    q.height = h;
    return q;
  };
  EXPECT_TRUE(types::rank_equal(qc(QcType::kPrePrepare, 2, 1),
                                qc(QcType::kPrePrepare, 2, 3)));
  EXPECT_TRUE(types::rank_equal(qc(QcType::kPrepare, 2, 3),
                                qc(QcType::kCommit, 2, 3)));
  EXPECT_FALSE(types::rank_equal(qc(QcType::kPrepare, 2, 3),
                                 qc(QcType::kPrepare, 2, 4)));
  EXPECT_FALSE(types::rank_equal(qc(QcType::kPrePrepare, 2, 3),
                                 qc(QcType::kPrepare, 2, 3)));
}

// ---------------------------------------------------------------------------
// Byzantine vote stuffing
// ---------------------------------------------------------------------------

TEST(VoteStuffing, ForgedVotesCannotFormQc) {
  using namespace consensus::testing;
  // One honest vote plus f Byzantine votes with garbage signatures must
  // never complete a quorum at the leader.
  ProtocolHarness h(Kind::kMarlin);
  std::size_t notices = 0;
  h.set_drop([&](const BusMessage& m) {
    // Suppress all honest votes except replica 0's; count COMMIT notices
    // (only emitted if a prepareQC formed).
    if (auto n = peek<types::QcNoticeMsg>(m, types::MsgKind::kQcNotice)) {
      if (n->phase == types::Phase::kCommit) ++notices;
    }
    if (m.envelope.kind == types::MsgKind::kVote && m.from != 0) return true;
    return false;
  });
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  ASSERT_EQ(notices, 0u);  // only one honest vote → no QC

  // Now stuff the leader with forged votes claiming to be replicas 2, 3.
  const Block* proposed = nullptr;
  for (const auto& b : {h.marlin(0).last_voted()}) {
    proposed = h.replica(1).store().get(b.hash);
  }
  ASSERT_NE(proposed, nullptr);
  for (ReplicaId fake : {2u, 3u}) {
    types::VoteMsg vote;
    vote.phase = types::Phase::kPrepare;
    vote.view = 1;
    vote.block_hash = proposed->hash();
    vote.parsig = {fake, Bytes(crypto::kSignatureSize, 0x66)};
    h.post_bypassing(fake, 1, types::make_envelope(types::MsgKind::kVote, vote));
  }
  h.deliver_all();
  EXPECT_EQ(notices, 0u);  // forged signatures never count
  EXPECT_TRUE(h.all_consistent());
}

TEST(VoteStuffing, ReplayedVoteCountsOnce) {
  using namespace consensus::testing;
  ProtocolHarness h(Kind::kMarlin);
  types::Envelope replay{types::MsgKind::kClientRequest, {}};
  bool captured = false;
  std::size_t notices = 0;
  h.set_drop([&](const BusMessage& m) {
    if (auto n = peek<types::QcNoticeMsg>(m, types::MsgKind::kQcNotice)) {
      if (n->phase == types::Phase::kCommit) ++notices;
    }
    if (m.envelope.kind == types::MsgKind::kVote) {
      if (m.from == 0 && !captured) {
        replay = m.envelope;
        captured = true;
      }
      // Let only replica 0's and the leader's own votes through: 2 < 3.
      return m.from != 0 && m.from != 1;
    }
    return false;
  });
  h.start_all();
  h.submit_to_all(op_of(1, 1));
  h.deliver_all();
  ASSERT_TRUE(captured);
  ASSERT_EQ(notices, 0u);
  // Replaying replica 0's vote five times adds no new signer.
  for (int i = 0; i < 5; ++i) h.post_bypassing(0, 1, replay);
  h.deliver_all();
  EXPECT_EQ(notices, 0u);
  EXPECT_TRUE(h.all_consistent());
}

}  // namespace
}  // namespace marlin
