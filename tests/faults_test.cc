// Fault-injection subsystem: plan JSON round-trips, chaos generation is a
// pure function of the seed, plans execute deterministically (same
// seed + plan => byte-identical golden trace), an equivocating leader
// cannot break safety, and liveness resumes after partitions heal — for
// both protocols.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "faults/chaos.h"
#include "faults/fault_plan.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "runtime/experiment.h"

namespace marlin {
namespace {

using faults::ByzantineMode;
using faults::FaultAction;
using faults::FaultKind;
using faults::FaultPlan;
using runtime::ClusterConfig;
using runtime::ExperimentOptions;
using runtime::ExperimentReport;
using runtime::ProtocolKind;

constexpr ProtocolKind kBothProtocols[] = {ProtocolKind::kMarlin,
                                           ProtocolKind::kHotStuff};

const char* protocol_name(ProtocolKind p) {
  return p == ProtocolKind::kMarlin ? "marlin" : "hotstuff";
}

/// A plan exercising every action kind and every optional field.
FaultPlan all_kinds_plan() {
  FaultPlan plan;
  plan.name = "all-kinds";
  plan.actions = {
      FaultAction::partition(Duration::millis(500), {{0, 1}, {2, 3}}),
      FaultAction::silence(Duration::millis(700), 1, {0, 2}),
      FaultAction::drop_burst(Duration::seconds(1), 0.25,
                              Duration::millis(800)),
      FaultAction::byzantine(Duration::millis(1100), 3,
                             ByzantineMode::kEquivocate),
      FaultAction::crash(Duration::millis(1200), 2),
      FaultAction::crash_leader(Duration::seconds(2)),
      FaultAction::slow_links(Duration::seconds(2), Duration::millis(40),
                              Duration::seconds(1)),
      FaultAction::gst(Duration::seconds(3), Duration::millis(120), 0.1),
      FaultAction::recover(Duration::seconds(3), 2),
      FaultAction::heal(Duration::seconds(4)),
  };
  return plan;
}

TEST(FaultPlanJson, RoundTripsEveryKindLosslessly) {
  const FaultPlan plan = all_kinds_plan();
  auto parsed = FaultPlan::from_json(plan.to_json());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  EXPECT_EQ(std::move(parsed).take(), plan);
}

TEST(FaultPlanJson, IgnoresUnknownKeys) {
  auto parsed = FaultPlan::from_json(
      "{\"name\":\"fwd\",\"schema_version\":9,\"actions\":[{"
      "\"kind\":\"crash\",\"at_ms\":1000,\"replica\":2,\"note\":\"hi\"}]}");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  const FaultPlan plan = std::move(parsed).take();
  EXPECT_EQ(plan.name, "fwd");
  ASSERT_EQ(plan.actions.size(), 1u);
  EXPECT_EQ(plan.actions[0], FaultAction::crash(Duration::seconds(1), 2));
}

TEST(FaultPlanJson, RejectsUnknownKindAndMissingFields) {
  EXPECT_FALSE(FaultPlan::from_json(
                   "{\"actions\":[{\"kind\":\"meteor\",\"at_ms\":1}]}")
                   .is_ok());
  EXPECT_FALSE(
      FaultPlan::from_json("{\"actions\":[{\"kind\":\"crash\",\"at_ms\":1}]}")
          .is_ok());  // no replica
  EXPECT_FALSE(FaultPlan::from_json("{\"actions\":[{\"kind\":\"crash\"}]}")
                   .is_ok());  // no at
}

TEST(FaultPlanSemantics, QuiesceCoversTransientsAndOneShots) {
  const FaultPlan plan = all_kinds_plan();
  // Latest disruption end: heal at 4s (>= slow_links end 3s, gst 3s,
  // drop_burst end 1.8s, last one-shot 3s).
  EXPECT_EQ(plan.quiesce_time(), Duration::seconds(4));
  // Replica 2 crashed but recovered; crash_leader resolves at run time and
  // is deliberately not counted.
  EXPECT_TRUE(plan.crashed_at_end().empty());

  FaultPlan down;
  down.actions = {FaultAction::crash(Duration::seconds(1), 3)};
  EXPECT_EQ(down.crashed_at_end(), std::vector<ReplicaId>{3});
}

TEST(Chaos, GenerationIsAPureFunctionOfTheSeed) {
  faults::ChaosOptions copt;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng a(seed), b(seed);
    EXPECT_EQ(faults::random_plan(a, copt), faults::random_plan(b, copt))
        << "seed " << seed;
  }
}

TEST(Chaos, PlansStayCheckable) {
  // The invariants chaos_search relies on: at most f replicas are ever
  // crashed-for-good or Byzantine, and every partition/silence is healed
  // (so the post-quiesce liveness check is fair).
  faults::ChaosOptions copt;
  copt.f = 1;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    Rng rng(seed);
    const FaultPlan plan = faults::random_plan(rng, copt);
    std::vector<ReplicaId> faulty;
    bool cut = false, healed = false;
    for (const FaultAction& a : plan.actions) {
      switch (a.kind) {
        case FaultKind::kCrash:
        case FaultKind::kByzantine:
          faulty.push_back(a.replica);
          break;
        case FaultKind::kPartition:
        case FaultKind::kSilence:
          cut = true;
          break;
        case FaultKind::kHeal:
          healed = true;
          break;
        default:
          break;
      }
    }
    std::sort(faulty.begin(), faulty.end());
    faulty.erase(std::unique(faulty.begin(), faulty.end()), faulty.end());
    EXPECT_LE(faulty.size(), copt.f) << "seed " << seed;
    EXPECT_LE(plan.crashed_at_end().size(), copt.f) << "seed " << seed;
    if (cut) {
      EXPECT_TRUE(healed) << "seed " << seed;
    }
  }
}

/// A cluster config + plan with a partition, a silence, and a crash — every
/// fault-execution path that matters for replay determinism.
ExperimentOptions eventful_options(ProtocolKind protocol,
                                   obs::TraceSink* trace) {
  ClusterConfig cfg;
  cfg.f = 1;
  cfg.seed = 11;
  cfg.consensus.protocol = protocol;
  cfg.consensus.pacemaker.base_timeout = Duration::millis(600);
  cfg.clients.count = 2;
  cfg.clients.window = 4;
  cfg.faults.name = "eventful";
  cfg.faults.actions = {
      FaultAction::partition(Duration::millis(600), {{0}, {1, 2, 3}}),
      FaultAction::silence(Duration::millis(1200), 2, {1}),
      FaultAction::heal(Duration::millis(2200)),
      FaultAction::crash(Duration::millis(2500), 0),
  };
  cfg.trace = trace;
  ExperimentOptions exp = runtime::throughput_options(
      cfg, Duration::millis(500), Duration::seconds(2));
  exp.drain = Duration::millis(500);
  exp.check_liveness = true;
  return exp;
}

TEST(FaultReplay, SameSeedAndPlanGiveByteIdenticalTraces) {
  for (ProtocolKind protocol : kBothProtocols) {
    obs::TraceSink sink_a{1 << 18}, sink_b{1 << 18};
    const ExperimentReport rep_a =
        runtime::run_experiment(eventful_options(protocol, &sink_a));
    const ExperimentReport rep_b =
        runtime::run_experiment(eventful_options(protocol, &sink_b));

    EXPECT_TRUE(rep_a.ok()) << protocol_name(protocol);
    ASSERT_GT(sink_a.size(), 0u);
    EXPECT_EQ(obs::trace_to_jsonl(sink_a), obs::trace_to_jsonl(sink_b))
        << protocol_name(protocol);
    EXPECT_EQ(rep_a.total_completed, rep_b.total_completed);
    EXPECT_EQ(rep_a.final_view, rep_b.final_view);
    ASSERT_EQ(rep_a.fault_log.size(), rep_b.fault_log.size());
    ASSERT_EQ(rep_a.fault_log.size(), 4u);
    for (std::size_t i = 0; i < rep_a.fault_log.size(); ++i) {
      EXPECT_EQ(rep_a.fault_log[i].kind, rep_b.fault_log[i].kind);
      EXPECT_EQ(rep_a.fault_log[i].target, rep_b.fault_log[i].target);
      EXPECT_EQ(rep_a.fault_log[i].at, rep_b.fault_log[i].at);
    }
  }
}

TEST(FaultLog, CrashLeaderResolvesItsTargetAtFireTime) {
  ClusterConfig cfg;
  cfg.f = 1;
  cfg.seed = 3;
  cfg.clients.count = 2;
  cfg.clients.window = 4;
  cfg.faults.actions = {FaultAction::crash_leader(Duration::seconds(2))};
  ExperimentOptions exp = runtime::throughput_options(
      cfg, Duration::millis(500), Duration::seconds(3));
  const ExperimentReport rep = runtime::run_experiment(exp);

  ASSERT_EQ(rep.fault_log.size(), 1u);
  EXPECT_EQ(rep.fault_log[0].kind, FaultKind::kCrashLeader);
  // Happy path until 2s: still view 1, whose leader is replica 1.
  EXPECT_EQ(rep.fault_log[0].target, 1u);
  EXPECT_EQ(rep.fault_log[0].view, 1u);
  EXPECT_TRUE(rep.safety_ok);
  EXPECT_TRUE(rep.consistent);
}

TEST(Byzantine, EquivocatingLeaderCannotBreakSafety) {
  for (ProtocolKind protocol : kBothProtocols) {
    ClusterConfig cfg;
    cfg.f = 1;
    cfg.seed = 5;
    cfg.consensus.protocol = protocol;
    cfg.consensus.pacemaker.base_timeout = Duration::millis(600);
    cfg.clients.count = 2;
    cfg.clients.window = 4;
    // The leader of view 1 equivocates from the start: odd peers receive
    // conflicting blocks. Whatever quorum shape results (progress with the
    // honest majority, or a view change to an honest leader), no two
    // correct replicas may ever commit divergent prefixes.
    cfg.faults.name = "equivocating-leader";
    cfg.faults.actions = {
        FaultAction::byzantine(Duration::zero(), 1, ByzantineMode::kEquivocate),
    };
    ExperimentOptions exp = runtime::throughput_options(
        cfg, Duration::millis(500), Duration::seconds(4));
    exp.check_liveness = true;
    const ExperimentReport rep = runtime::run_experiment(exp);

    EXPECT_TRUE(rep.safety_ok) << protocol_name(protocol);
    EXPECT_TRUE(rep.consistent) << protocol_name(protocol);
    // Byzantine faults are persistent but within budget (f=1): the honest
    // quorum keeps committing.
    EXPECT_TRUE(rep.liveness.progressed) << protocol_name(protocol);
    ASSERT_EQ(rep.fault_log.size(), 1u);
    EXPECT_EQ(rep.fault_log[0].kind, FaultKind::kByzantine);
    EXPECT_EQ(rep.fault_log[0].target, 1u);
  }
}

TEST(Liveness, ResumesAfterPartitionHeals) {
  for (ProtocolKind protocol : kBothProtocols) {
    ClusterConfig cfg;
    cfg.f = 1;
    cfg.seed = 9;
    cfg.consensus.protocol = protocol;
    cfg.consensus.pacemaker.base_timeout = Duration::millis(600);
    cfg.clients.count = 2;
    cfg.clients.window = 4;
    // Isolate one replica across a leader rotation, then heal: it must
    // catch up (fetch path) and every correct replica must commit fresh
    // blocks after the quiesce point.
    cfg.faults.name = "partition-heal";
    cfg.faults.actions = {
        FaultAction::partition(Duration::millis(700), {{0}, {1, 2, 3}}),
        FaultAction::heal(Duration::millis(2500)),
    };
    ExperimentOptions exp = runtime::throughput_options(
        cfg, Duration::millis(500), Duration::seconds(3));
    exp.check_liveness = true;
    const ExperimentReport rep = runtime::run_experiment(exp);

    EXPECT_TRUE(rep.ok()) << protocol_name(protocol);
    EXPECT_TRUE(rep.liveness.checked);
    EXPECT_TRUE(rep.liveness.progressed) << protocol_name(protocol);
    EXPECT_GT(rep.liveness.commits_at_end, rep.liveness.commits_at_quiesce)
        << protocol_name(protocol);
  }
}

}  // namespace
}  // namespace marlin
