// True crash-recovery: replicas restart from their durable consensus state
// (write-ahead voting), amnesia restarts rejoin via snapshot state
// transfer in O(1) request rounds, WAL damage is handled per the framing
// guarantees (torn tail replays cleanly, mid-file corruption surfaces
// kCorruption and keeps the replica down), and the cross-restart safety
// oracle actually catches the double votes a broken persistence path
// produces.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "faults/fault_plan.h"
#include "faults/safety_oracle.h"
#include "obs/trace.h"
#include "runtime/experiment.h"
#include "storage/env.h"

namespace marlin {
namespace {

using faults::FaultAction;
using runtime::ClusterConfig;
using runtime::Cluster;
using runtime::ProtocolKind;

constexpr ProtocolKind kBothProtocols[] = {ProtocolKind::kMarlin,
                                           ProtocolKind::kHotStuff};

const char* protocol_name(ProtocolKind p) {
  return p == ProtocolKind::kMarlin ? "marlin" : "hotstuff";
}

ClusterConfig base_config(ProtocolKind protocol) {
  ClusterConfig cfg;
  cfg.f = 1;
  cfg.seed = 21;
  cfg.consensus.protocol = protocol;
  cfg.consensus.pacemaker.base_timeout = Duration::millis(600);
  cfg.clients.count = 4;
  cfg.clients.window = 8;
  return cfg;
}

std::vector<obs::TraceEvent> events_of_type(const obs::TraceSink& sink,
                                            obs::EventType type) {
  std::vector<obs::TraceEvent> out;
  for (const obs::TraceEvent& e : sink.events()) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

/// Wire sends of `kind` from `node` at or after `from`.
std::size_t sends_of_kind(const obs::TraceSink& sink, std::uint32_t node,
                          types::MsgKind kind, TimePoint from) {
  std::size_t count = 0;
  for (const obs::TraceEvent& e : sink.events()) {
    if (e.type == obs::EventType::kMsgSent && e.node == node &&
        e.kind == static_cast<std::uint8_t>(kind) && e.at >= from) {
      ++count;
    }
  }
  return count;
}

// ---------------------------------------------------------------------------
// Restart from disk (plan-driven, both protocols)
// ---------------------------------------------------------------------------

TEST(Restart, ReplicaRevivesFromDiskAndClusterStaysLiveAndSafe) {
  for (ProtocolKind protocol : kBothProtocols) {
    obs::TraceSink trace{1 << 18};
    ClusterConfig cfg = base_config(protocol);
    cfg.trace = &trace;
    cfg.faults.name = "restart-from-disk";
    cfg.faults.actions = {
        FaultAction::restart(Duration::millis(1500), 2, Duration::millis(900)),
    };
    runtime::ExperimentOptions exp = runtime::throughput_options(
        cfg, Duration::millis(500), Duration::seconds(4));
    exp.check_liveness = true;
    const runtime::ExperimentReport rep = runtime::run_experiment(exp);

    EXPECT_TRUE(rep.ok()) << protocol_name(protocol);
    EXPECT_TRUE(rep.liveness.progressed) << protocol_name(protocol);

    // Exactly one revival, from retained disk state (a = 0, not wiped).
    const auto restarts =
        events_of_type(trace, obs::EventType::kReplicaRestart);
    ASSERT_EQ(restarts.size(), 1u) << protocol_name(protocol);
    EXPECT_EQ(restarts[0].node, 2u);
    EXPECT_EQ(restarts[0].a, 0u);
    // Write-ahead voting put records in the WAL before the crash; the
    // revival replayed them and restored a non-genesis commit frontier.
    EXPECT_GT(restarts[0].b, 0u) << "no WAL records replayed";
    EXPECT_GT(restarts[0].height, 0u) << "restored frontier at genesis";

    // The whole run — pre-crash votes and post-revival votes of the same
    // node id — passes the cross-restart safety oracle.
    const auto violations = faults::check_cross_restart_safety(trace.events());
    EXPECT_TRUE(violations.empty())
        << protocol_name(protocol) << ": " << violations[0].describe();
  }
}

TEST(Restart, RecoveryMetricsAreExported) {
  obs::MetricsRegistry metrics;
  ClusterConfig cfg = base_config(ProtocolKind::kMarlin);
  cfg.faults.actions = {
      FaultAction::restart(Duration::millis(1500), 2, Duration::millis(900)),
  };
  runtime::ExperimentOptions exp = runtime::throughput_options(
      cfg, Duration::millis(500), Duration::seconds(4));
  exp.check_liveness = true;
  exp.metrics = &metrics;
  const runtime::ExperimentReport rep = runtime::run_experiment(exp);
  EXPECT_TRUE(rep.ok());

  EXPECT_EQ(metrics.counter_value("recovery.restarts"), 1u);
  EXPECT_GT(metrics.counter_value("recovery.wal_records_replayed"), 0u);
  EXPECT_GT(metrics.gauge_value("recovery.duration_ms", "replica=2"), 0.0);
}

// ---------------------------------------------------------------------------
// The oracle proof: a broken persistence path MUST trip the double-vote
// check (otherwise the oracle is decoration)
// ---------------------------------------------------------------------------

/// Runs a stable view-1 window, then restarts the leader mid-view. With
/// write-ahead voting intact the revived leader resumes from its persisted
/// voted state; with persistence disabled it forgets its votes, re-runs
/// view 1 from height 1, and double-votes.
std::vector<faults::SafetyViolation> leader_restart_violations(
    bool disable_persistence) {
  obs::TraceSink trace{1 << 18};
  ClusterConfig cfg = base_config(ProtocolKind::kMarlin);
  cfg.consensus.disable_persistence = disable_persistence;
  // Fast client retransmits refill the revived leader's txpool before the
  // rest of the cluster times out of the view — the amnesiac leader then
  // re-proposes from height 1 inside the SAME view it led before the
  // crash, and its self-vote conflicts with its forgotten pre-crash vote.
  cfg.clients.retransmit_timeout = Duration::millis(300);
  cfg.trace = &trace;
  sim::Simulator sim(cfg.seed);
  Cluster cluster(sim, cfg);
  cluster.start();
  sim.run_for(Duration::seconds(2));
  EXPECT_GT(cluster.replica(0).protocol().committed_height(), 0u);

  // View 1's leader (replica 1) has voted many times by now. Crash it and
  // revive it from whatever it persisted, quickly enough that the other
  // replicas are still waiting in the same view.
  const ReplicaId leader = cluster.current_leader();
  cluster.crash_replica(leader);
  sim.run_for(Duration::millis(100));
  EXPECT_TRUE(cluster.restart_replica(leader, /*wipe=*/false).is_ok())
      << "restart failed";
  sim.run_for(Duration::seconds(3));
  return faults::check_cross_restart_safety(trace.events());
}

TEST(RestartOracle, BrokenPersistenceTripsTheDoubleVoteCheck) {
  const auto violations = leader_restart_violations(true);
  ASSERT_FALSE(violations.empty())
      << "persistence disabled but the oracle saw no double vote — the "
         "oracle cannot catch the bug class it exists for";
  bool double_vote = false;
  for (const auto& v : violations) {
    if (v.kind == faults::SafetyViolation::Kind::kDoubleVote) {
      double_vote = true;
      EXPECT_EQ(v.node, 1u) << v.describe();
    }
  }
  EXPECT_TRUE(double_vote);
}

TEST(RestartOracle, IntactPersistenceStaysClean) {
  const auto violations = leader_restart_violations(false);
  EXPECT_TRUE(violations.empty())
      << "first violation: " << violations[0].describe();
}

// ---------------------------------------------------------------------------
// Amnesia (wipe_disk) + snapshot state transfer
// ---------------------------------------------------------------------------

TEST(StateTransfer, WipedReplicaCatchesUpViaSnapshotInO1Rounds) {
  obs::TraceSink trace{1 << 20};
  ClusterConfig cfg = base_config(ProtocolKind::kMarlin);
  // The gap below (~100+ blocks) exceeds both the fetch batch limit (64)
  // and the checkpoint interval, so checkpoints run inside the outage.
  cfg.consensus.checkpoint_interval = 32;
  cfg.trace = &trace;
  sim::Simulator sim(cfg.seed);
  Cluster cluster(sim, cfg);
  cluster.start();
  sim.run_for(Duration::seconds(1));

  cluster.crash_replica(2);
  const Height down_at = cluster.replica(2).protocol().committed_height();
  sim.run_for(Duration::seconds(12));
  const Height cluster_height = cluster.replica(0).protocol().committed_height();
  ASSERT_GT(cluster_height,
            down_at + types::FetchRequestMsg::kFetchBatchLimit + 16)
      << "outage too short to force the snapshot path";

  const TimePoint revived_at = sim.now();
  ASSERT_TRUE(cluster.restart_replica(2, /*wipe=*/true).is_ok());
  EXPECT_EQ(cluster.replica(2).protocol().committed_height(), 0u)
      << "wipe_disk must revive amnesiac";
  sim.run_for(Duration::seconds(5));

  // Caught up (within the live tail) and consistent.
  const Height caught_up = cluster.replica(2).protocol().committed_height();
  EXPECT_GT(caught_up, cluster_height);
  EXPECT_TRUE(cluster.committed_heights_consistent());
  EXPECT_FALSE(cluster.any_safety_violation());

  // The gap closed through the snapshot exchange: a served manifest and an
  // applied suffix, not O(gap / 64) fetch rounds.
  const auto transfers = events_of_type(trace, obs::EventType::kStateTransfer);
  bool served = false, applied = false;
  for (const auto& e : transfers) {
    if (e.a == 1) served = true;
    if (e.a == 2 && e.node == 2) {
      applied = true;
      EXPECT_GT(e.b, types::FetchRequestMsg::kFetchBatchLimit)
          << "suffix smaller than one fetch batch";
    }
  }
  EXPECT_TRUE(served) << "no snapshot served";
  EXPECT_TRUE(applied) << "no snapshot applied by the wiped replica";

  // O(1) request rounds: the whole catch-up cost at most a handful of
  // fetch/snapshot requests, where batched fetching alone would need
  // ≥ gap/64 rounds plus per-block walking. The amnesia-recovery entry
  // broadcast alone accounts for n = 4 snapshot requests.
  const std::size_t fetch_rounds =
      sends_of_kind(trace, 2, types::MsgKind::kFetchRequest, revived_at);
  const std::size_t snapshot_rounds =
      sends_of_kind(trace, 2, types::MsgKind::kSnapshotRequest, revived_at);
  EXPECT_LE(fetch_rounds + snapshot_rounds, 8u)
      << fetch_rounds << " fetch + " << snapshot_rounds
      << " snapshot requests for a gap of "
      << (cluster_height - down_at) << " blocks";

  // The wiped incarnation double-votes for nothing.
  const auto violations = faults::check_cross_restart_safety(trace.events());
  EXPECT_TRUE(violations.empty())
      << "first violation: " << violations[0].describe();

  // state_transfer.bytes metrology reached the wiped replica's registry.
  EXPECT_GT(cluster.replica(2).metrics().counter_value("state_transfer.bytes"),
            0u);
}

// ---------------------------------------------------------------------------
// WAL damage during restart() (framing guarantees of storage/wal.h)
// ---------------------------------------------------------------------------

/// Newest WAL segment in the replica's env (names are zero-padded, so the
/// lexicographic max is the numeric max).
std::string newest_wal(storage::Env& env) {
  std::string best;
  for (const std::string& name : env.list_files()) {
    if (name.rfind("wal-", 0) == 0 && name > best) best = name;
  }
  return best;
}

TEST(WalRecovery, TornFinalRecordReplaysCleanly) {
  ClusterConfig cfg = base_config(ProtocolKind::kMarlin);
  sim::Simulator sim(cfg.seed);
  Cluster cluster(sim, cfg);
  cluster.start();
  sim.run_for(Duration::seconds(2));
  cluster.crash_replica(2);

  // Tear the final record: the crash happened mid-append. Replay must
  // stop cleanly at the torn tail instead of erroring.
  storage::Env& env = cluster.replica(2).db_env();
  const std::string wal = newest_wal(env);
  ASSERT_FALSE(wal.empty());
  auto content = env.read_file(wal);
  ASSERT_TRUE(content.is_ok());
  Bytes torn = content.value();
  ASSERT_GT(torn.size(), 16u);
  torn.resize(torn.size() - 3);
  ASSERT_TRUE(env.write_file_atomic(wal, torn).is_ok());

  ASSERT_TRUE(cluster.restart_replica(2, /*wipe=*/false).is_ok());
  EXPECT_EQ(cluster.replica(2).restarts(), 1u);

  const Height at_restart = cluster.replica(2).protocol().committed_height();
  sim.run_for(Duration::seconds(3));
  // The replay (metered on the recovery CPU task) consumed every record
  // except the torn one.
  EXPECT_GT(
      cluster.replica(2).metrics().counter_value("recovery.wal_records_replayed"),
      0u);
  EXPECT_GT(cluster.replica(2).protocol().committed_height(), at_restart);
  EXPECT_TRUE(cluster.committed_heights_consistent());
  EXPECT_FALSE(cluster.any_safety_violation());
}

TEST(WalRecovery, MidFileCorruptionSurfacesKCorruptionAndStaysDown) {
  ClusterConfig cfg = base_config(ProtocolKind::kMarlin);
  sim::Simulator sim(cfg.seed);
  Cluster cluster(sim, cfg);
  cluster.start();
  sim.run_for(Duration::seconds(2));
  cluster.crash_replica(2);

  // Flip one payload byte of the FIRST record: its length prefix is still
  // intact, so this is real mid-file corruption, not a torn tail.
  storage::Env& env = cluster.replica(2).db_env();
  const std::string wal = newest_wal(env);
  ASSERT_FALSE(wal.empty());
  auto content = env.read_file(wal);
  ASSERT_TRUE(content.is_ok());
  Bytes bad = content.value();
  ASSERT_GT(bad.size(), 9u);
  bad[8] ^= 0xff;
  ASSERT_TRUE(env.write_file_atomic(wal, bad).is_ok());

  const Status s = cluster.restart_replica(2, /*wipe=*/false);
  ASSERT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kCorruption) << s.message();
  // An unrecoverable store keeps the replica crash-stopped: no rejoining
  // with partial state.
  EXPECT_TRUE(cluster.network().is_down(2));
  EXPECT_EQ(cluster.replica(2).metrics().counter_value("recovery.failures"),
            1u);

  // The other replicas keep committing without it (f = 1).
  const Height before = cluster.replica(0).protocol().committed_height();
  sim.run_for(Duration::seconds(3));
  EXPECT_GT(cluster.replica(0).protocol().committed_height(), before);
  EXPECT_TRUE(cluster.committed_heights_consistent());
}

// ---------------------------------------------------------------------------
// Restart determinism (same seed + restart plan ⇒ bit-identical trace)
// ---------------------------------------------------------------------------

TEST(Restart, RestartPlanReplaysBitIdentically) {
  auto run = [](obs::TraceSink* sink) {
    ClusterConfig cfg = base_config(ProtocolKind::kMarlin);
    cfg.trace = sink;
    cfg.faults.actions = {
        FaultAction::restart(Duration::millis(1200), 3, Duration::millis(700)),
        FaultAction::wipe_disk(Duration::millis(2500), 3,
                               Duration::millis(600)),
    };
    runtime::ExperimentOptions exp = runtime::throughput_options(
        cfg, Duration::millis(500), Duration::seconds(3));
    exp.check_liveness = true;
    return runtime::run_experiment(exp);
  };
  obs::TraceSink a{1 << 18}, b{1 << 18};
  const auto rep_a = run(&a);
  const auto rep_b = run(&b);
  EXPECT_TRUE(rep_a.ok());
  ASSERT_GT(a.size(), 0u);
  EXPECT_EQ(a.events(), b.events());
  EXPECT_EQ(rep_a.total_completed, rep_b.total_completed);
}

}  // namespace
}  // namespace marlin
