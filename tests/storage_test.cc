// Tests for the storage engine: WAL framing and recovery semantics,
// memtable, SSTable format (including corruption detection), and the full
// KVStore (flush, checkpoint/GC, recovery, scans) on both environments.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.h"
#include "storage/kvstore.h"

namespace marlin::storage {
namespace {

// ---------------------------------------------------------------------------
// Env
// ---------------------------------------------------------------------------

TEST(MemEnv, BasicFileOps) {
  auto env = make_mem_env();
  EXPECT_FALSE(env->file_exists("a"));
  ASSERT_TRUE(env->write_file_atomic("a", to_bytes("data")).is_ok());
  EXPECT_TRUE(env->file_exists("a"));
  auto content = env->read_file("a");
  ASSERT_TRUE(content.is_ok());
  EXPECT_EQ(content.value(), to_bytes("data"));
  ASSERT_TRUE(env->remove_file("a").is_ok());
  EXPECT_FALSE(env->file_exists("a"));
}

TEST(MemEnv, AppendFileAccumulates) {
  auto env = make_mem_env();
  auto f = env->create_append("log");
  ASSERT_TRUE(f.is_ok());
  ASSERT_TRUE(f.value()->append(to_bytes("one")).is_ok());
  ASSERT_TRUE(f.value()->append(to_bytes("two")).is_ok());
  EXPECT_EQ(f.value()->size(), 6u);
  EXPECT_EQ(env->read_file("log").value(), to_bytes("onetwo"));
}

TEST(MemEnv, ListFiles) {
  auto env = make_mem_env();
  (void)env->write_file_atomic("b", {});
  (void)env->write_file_atomic("a", {});
  auto files = env->list_files();
  EXPECT_EQ(files.size(), 2u);
}

TEST(MemEnv, ReadMissingFails) {
  auto env = make_mem_env();
  EXPECT_EQ(env->read_file("nope").status().code(), ErrorCode::kNotFound);
}

TEST(PosixEnv, RoundTrip) {
  const std::string dir = "/tmp/marlin_posix_env_test";
  std::filesystem::remove_all(dir);
  auto env_result = make_posix_env(dir);
  ASSERT_TRUE(env_result.is_ok());
  auto& env = *env_result.value();
  ASSERT_TRUE(env.write_file_atomic("f", to_bytes("persisted")).is_ok());
  EXPECT_EQ(env.read_file("f").value(), to_bytes("persisted"));
  auto f = env.create_append("log");
  ASSERT_TRUE(f.is_ok());
  ASSERT_TRUE(f.value()->append(to_bytes("rec")).is_ok());
  ASSERT_TRUE(f.value()->sync().is_ok());
  EXPECT_TRUE(env.file_exists("log"));
  EXPECT_EQ(env.list_files().size(), 2u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// WAL
// ---------------------------------------------------------------------------

TEST(Wal, RoundTrip) {
  auto env = make_mem_env();
  auto w = WalWriter::create(*env, "wal");
  ASSERT_TRUE(w.is_ok());
  ASSERT_TRUE(w.value().append(to_bytes("alpha")).is_ok());
  ASSERT_TRUE(w.value().append(to_bytes("beta")).is_ok());
  auto records = wal_read_all(*env, "wal");
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 2u);
  EXPECT_EQ(records.value()[0], to_bytes("alpha"));
  EXPECT_EQ(records.value()[1], to_bytes("beta"));
}

TEST(Wal, EmptyLog) {
  auto env = make_mem_env();
  auto w = WalWriter::create(*env, "wal");
  ASSERT_TRUE(w.is_ok());
  auto records = wal_read_all(*env, "wal");
  ASSERT_TRUE(records.is_ok());
  EXPECT_TRUE(records.value().empty());
}

TEST(Wal, TornTailIsIgnored) {
  auto env = make_mem_env();
  {
    auto w = WalWriter::create(*env, "wal");
    ASSERT_TRUE(w.is_ok());
    ASSERT_TRUE(w.value().append(to_bytes("whole")).is_ok());
    ASSERT_TRUE(w.value().append(to_bytes("torn record")).is_ok());
  }
  Bytes content = env->read_file("wal").value();
  content.resize(content.size() - 4);  // tear the final record
  ASSERT_TRUE(env->write_file_atomic("wal", content).is_ok());

  auto records = wal_read_all(*env, "wal");
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 1u);
  EXPECT_EQ(records.value()[0], to_bytes("whole"));
}

TEST(Wal, MidFileCorruptionDetected) {
  auto env = make_mem_env();
  {
    auto w = WalWriter::create(*env, "wal");
    ASSERT_TRUE(w.is_ok());
    ASSERT_TRUE(w.value().append(to_bytes("record one")).is_ok());
    ASSERT_TRUE(w.value().append(to_bytes("record two")).is_ok());
  }
  Bytes content = env->read_file("wal").value();
  content[10] ^= 0xff;  // flip a bit inside the first record's payload
  ASSERT_TRUE(env->write_file_atomic("wal", content).is_ok());
  EXPECT_EQ(wal_read_all(*env, "wal").status().code(), ErrorCode::kCorruption);
}

// ---------------------------------------------------------------------------
// MemTable
// ---------------------------------------------------------------------------

TEST(MemTable, PutGetDelete) {
  MemTable mt;
  mt.put("k", to_bytes("v1"));
  ASSERT_TRUE(mt.get("k").has_value());
  EXPECT_EQ(mt.get("k")->value, to_bytes("v1"));
  mt.put("k", to_bytes("v2"));
  EXPECT_EQ(mt.get("k")->value, to_bytes("v2"));
  mt.del("k");
  ASSERT_TRUE(mt.get("k").has_value());
  EXPECT_TRUE(mt.get("k")->tombstone);
  EXPECT_FALSE(mt.get("other").has_value());
}

TEST(MemTable, SizeTracking) {
  MemTable mt;
  EXPECT_EQ(mt.approximate_bytes(), 0u);
  mt.put("key", Bytes(100, 1));
  const std::size_t after_one = mt.approximate_bytes();
  EXPECT_GT(after_one, 100u);
  mt.put("key", Bytes(10, 1));  // overwrite shrinks
  EXPECT_LT(mt.approximate_bytes(), after_one);
  mt.clear();
  EXPECT_EQ(mt.approximate_bytes(), 0u);
  EXPECT_TRUE(mt.empty());
}

// ---------------------------------------------------------------------------
// SSTable
// ---------------------------------------------------------------------------

class SSTableTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = make_mem_env(); }

  std::shared_ptr<SSTable> build(
      const std::map<std::string, ValueOrTombstone>& entries) {
    EXPECT_TRUE(write_sstable(*env_, "t1", entries).is_ok());
    auto t = SSTable::open(*env_, "t1");
    EXPECT_TRUE(t.is_ok());
    return t.value();
  }

  std::unique_ptr<Env> env_;
};

TEST_F(SSTableTest, LookupHitAndMiss) {
  auto t = build({{"apple", {to_bytes("red"), false}},
                  {"banana", {to_bytes("yellow"), false}},
                  {"cherry", {to_bytes("dark"), false}}});
  EXPECT_EQ(t->entry_count(), 3u);
  ASSERT_TRUE(t->get("banana").has_value());
  EXPECT_EQ(t->get("banana")->value, to_bytes("yellow"));
  EXPECT_FALSE(t->get("blueberry").has_value());
  EXPECT_FALSE(t->get("").has_value());
  EXPECT_FALSE(t->get("zzz").has_value());
}

TEST_F(SSTableTest, TombstonesPreserved) {
  auto t = build({{"gone", {{}, true}}, {"kept", {to_bytes("v"), false}}});
  ASSERT_TRUE(t->get("gone").has_value());
  EXPECT_TRUE(t->get("gone")->tombstone);
  EXPECT_FALSE(t->get("kept")->tombstone);
}

TEST_F(SSTableTest, ReadAllInOrder) {
  auto t = build({{"b", {to_bytes("2"), false}},
                  {"a", {to_bytes("1"), false}},
                  {"c", {to_bytes("3"), false}}});
  auto all = t->read_all();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].key, "a");
  EXPECT_EQ(all[2].key, "c");
}

TEST_F(SSTableTest, EmptyTable) {
  auto t = build({});
  EXPECT_EQ(t->entry_count(), 0u);
  EXPECT_FALSE(t->get("anything").has_value());
}

TEST_F(SSTableTest, CorruptionDetected) {
  build({{"k", {to_bytes("v"), false}}});
  Bytes raw = env_->read_file("t1").value();
  raw[1] ^= 0x01;
  ASSERT_TRUE(env_->write_file_atomic("t1", raw).is_ok());
  EXPECT_EQ(SSTable::open(*env_, "t1").status().code(),
            ErrorCode::kCorruption);
}

TEST_F(SSTableTest, TruncationDetected) {
  build({{"k", {to_bytes("v"), false}}});
  Bytes raw = env_->read_file("t1").value();
  raw.resize(raw.size() / 2);
  ASSERT_TRUE(env_->write_file_atomic("t1", raw).is_ok());
  EXPECT_FALSE(SSTable::open(*env_, "t1").is_ok());
}

TEST_F(SSTableTest, LargeTableBinarySearch) {
  std::map<std::string, ValueOrTombstone> entries;
  for (int i = 0; i < 1000; ++i) {
    char key[16];
    std::snprintf(key, sizeof key, "key%05d", i);
    entries[key] = {to_bytes(std::to_string(i)), false};
  }
  auto t = build(entries);
  EXPECT_EQ(t->get("key00500")->value, to_bytes("500"));
  EXPECT_EQ(t->get("key00999")->value, to_bytes("999"));
  EXPECT_FALSE(t->get("key01000").has_value());
}

// ---------------------------------------------------------------------------
// KVStore
// ---------------------------------------------------------------------------

class KVStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = make_mem_env();
    reopen();
  }

  void reopen(KVStoreOptions opts = {}) {
    store_.reset();
    auto s = KVStore::open(*env_, opts);
    ASSERT_TRUE(s.is_ok()) << s.status().to_string();
    store_ = std::move(s).take();
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<KVStore> store_;
};

TEST_F(KVStoreTest, PutGetDelete) {
  ASSERT_TRUE(store_->put("k1", to_bytes("v1")).is_ok());
  EXPECT_EQ(store_->get("k1").value(), to_bytes("v1"));
  ASSERT_TRUE(store_->put("k1", to_bytes("v2")).is_ok());
  EXPECT_EQ(store_->get("k1").value(), to_bytes("v2"));
  ASSERT_TRUE(store_->del("k1").is_ok());
  EXPECT_EQ(store_->get("k1").status().code(), ErrorCode::kNotFound);
}

TEST_F(KVStoreTest, GetMissing) {
  EXPECT_EQ(store_->get("missing").status().code(), ErrorCode::kNotFound);
}

TEST_F(KVStoreTest, FlushMovesDataToSSTable) {
  ASSERT_TRUE(store_->put("a", to_bytes("1")).is_ok());
  ASSERT_TRUE(store_->put("b", to_bytes("2")).is_ok());
  EXPECT_EQ(store_->sstable_count(), 0u);
  ASSERT_TRUE(store_->flush().is_ok());
  EXPECT_EQ(store_->sstable_count(), 1u);
  EXPECT_EQ(store_->memtable_bytes(), 0u);
  EXPECT_EQ(store_->get("a").value(), to_bytes("1"));
}

TEST_F(KVStoreTest, NewerTableShadowsOlder) {
  ASSERT_TRUE(store_->put("k", to_bytes("old")).is_ok());
  ASSERT_TRUE(store_->flush().is_ok());
  ASSERT_TRUE(store_->put("k", to_bytes("new")).is_ok());
  ASSERT_TRUE(store_->flush().is_ok());
  EXPECT_EQ(store_->sstable_count(), 2u);
  EXPECT_EQ(store_->get("k").value(), to_bytes("new"));
}

TEST_F(KVStoreTest, DeleteShadowsFlushedValue) {
  ASSERT_TRUE(store_->put("k", to_bytes("v")).is_ok());
  ASSERT_TRUE(store_->flush().is_ok());
  ASSERT_TRUE(store_->del("k").is_ok());
  EXPECT_EQ(store_->get("k").status().code(), ErrorCode::kNotFound);
  ASSERT_TRUE(store_->flush().is_ok());
  EXPECT_EQ(store_->get("k").status().code(), ErrorCode::kNotFound);
}

TEST_F(KVStoreTest, CheckpointCompactsToOneTable) {
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store_->put("key" + std::to_string(i),
                            to_bytes(std::to_string(i)))
                    .is_ok());
    ASSERT_TRUE(store_->flush().is_ok());
  }
  EXPECT_EQ(store_->sstable_count(), 5u);
  ASSERT_TRUE(store_->checkpoint().is_ok());
  EXPECT_EQ(store_->sstable_count(), 1u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(store_->get("key" + std::to_string(i)).value(),
              to_bytes(std::to_string(i)));
  }
}

TEST_F(KVStoreTest, CheckpointDropsTombstones) {
  ASSERT_TRUE(store_->put("dead", to_bytes("v")).is_ok());
  ASSERT_TRUE(store_->flush().is_ok());
  ASSERT_TRUE(store_->del("dead").is_ok());
  ASSERT_TRUE(store_->checkpoint().is_ok());
  EXPECT_EQ(store_->get("dead").status().code(), ErrorCode::kNotFound);
  // The compacted table holds zero entries for the deleted key.
  EXPECT_EQ(store_->sstable_count(), 1u);
}

TEST_F(KVStoreTest, AutoFlushOnThreshold) {
  KVStoreOptions opts;
  opts.memtable_flush_bytes = 1024;
  reopen(opts);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        store_->put("key" + std::to_string(i), Bytes(64, 0x11)).is_ok());
  }
  EXPECT_GT(store_->sstable_count(), 0u);
  EXPECT_EQ(store_->get("key0").value(), Bytes(64, 0x11));
}

TEST_F(KVStoreTest, RecoveryReplaysWal) {
  ASSERT_TRUE(store_->put("persist", to_bytes("me")).is_ok());
  ASSERT_TRUE(store_->put("and", to_bytes("me too")).is_ok());
  ASSERT_TRUE(store_->del("and").is_ok());
  reopen();  // WAL tail replays
  EXPECT_EQ(store_->get("persist").value(), to_bytes("me"));
  EXPECT_EQ(store_->get("and").status().code(), ErrorCode::kNotFound);
}

TEST_F(KVStoreTest, RecoveryAfterFlushAndMoreWrites) {
  ASSERT_TRUE(store_->put("flushed", to_bytes("1")).is_ok());
  ASSERT_TRUE(store_->flush().is_ok());
  ASSERT_TRUE(store_->put("unflushed", to_bytes("2")).is_ok());
  reopen();
  EXPECT_EQ(store_->get("flushed").value(), to_bytes("1"));
  EXPECT_EQ(store_->get("unflushed").value(), to_bytes("2"));
}

TEST_F(KVStoreTest, RepeatedReopenStable) {
  ASSERT_TRUE(store_->put("k", to_bytes("v")).is_ok());
  for (int i = 0; i < 3; ++i) {
    reopen();
    EXPECT_EQ(store_->get("k").value(), to_bytes("v"));
  }
}

TEST_F(KVStoreTest, Scan) {
  ASSERT_TRUE(store_->put("a1", to_bytes("1")).is_ok());
  ASSERT_TRUE(store_->put("a2", to_bytes("2")).is_ok());
  ASSERT_TRUE(store_->flush().is_ok());
  ASSERT_TRUE(store_->put("a3", to_bytes("3")).is_ok());
  ASSERT_TRUE(store_->put("b1", to_bytes("x")).is_ok());
  ASSERT_TRUE(store_->del("a2").is_ok());

  auto rows = store_->scan("a", "b");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first, "a1");
  EXPECT_EQ(rows[1].first, "a3");
}

TEST_F(KVStoreTest, RandomizedAgainstReferenceMap) {
  // Property test: the store behaves exactly like a std::map through an
  // arbitrary interleaving of puts/deletes/flushes/checkpoints/reopens.
  Rng rng(2024);
  std::map<std::string, Bytes> reference;
  for (int step = 0; step < 2000; ++step) {
    const std::string key = "k" + std::to_string(rng.next_below(50));
    switch (rng.next_below(10)) {
      case 0:
        ASSERT_TRUE(store_->flush().is_ok());
        break;
      case 1:
        ASSERT_TRUE(store_->checkpoint().is_ok());
        break;
      case 2:
        reopen();
        break;
      case 3:
      case 4:
        ASSERT_TRUE(store_->del(key).is_ok());
        reference.erase(key);
        break;
      default: {
        const Bytes value = rng.next_bytes(1 + rng.next_below(40));
        ASSERT_TRUE(store_->put(key, value).is_ok());
        reference[key] = value;
      }
    }
    if (step % 97 == 0) {
      for (const auto& [k, v] : reference) {
        auto got = store_->get(k);
        ASSERT_TRUE(got.is_ok()) << k;
        ASSERT_EQ(got.value(), v) << k;
      }
    }
  }
  // Final full comparison via scan.
  auto rows = store_->scan("", "\x7f");
  ASSERT_EQ(rows.size(), reference.size());
  for (const auto& [k, v] : rows) {
    ASSERT_EQ(reference.at(k), v);
  }
}

TEST(KVStorePosix, SurvivesRealFilesystem) {
  const std::string dir = "/tmp/marlin_kv_posix_test";
  std::filesystem::remove_all(dir);
  auto env = make_posix_env(dir);
  ASSERT_TRUE(env.is_ok());
  {
    auto store = KVStore::open(*env.value());
    ASSERT_TRUE(store.is_ok());
    ASSERT_TRUE(store.value()->put("disk", to_bytes("durable")).is_ok());
    ASSERT_TRUE(store.value()->flush().is_ok());
    ASSERT_TRUE(store.value()->put("tail", to_bytes("wal")).is_ok());
  }
  {
    auto store = KVStore::open(*env.value());
    ASSERT_TRUE(store.is_ok());
    EXPECT_EQ(store.value()->get("disk").value(), to_bytes("durable"));
    EXPECT_EQ(store.value()->get("tail").value(), to_bytes("wal"));
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace marlin::storage

namespace marlin::storage {
namespace {

// ---------------------------------------------------------------------------
// Additional engine edge cases
// ---------------------------------------------------------------------------

TEST(KVStoreEdge, CheckpointOnEmptyStoreIsNoop) {
  auto env = make_mem_env();
  auto store = KVStore::open(*env);
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value()->checkpoint().is_ok());
  EXPECT_EQ(store.value()->sstable_count(), 0u);
}

TEST(KVStoreEdge, FlushEmptyMemtableOnlyRotatesWal) {
  auto env = make_mem_env();
  auto store = KVStore::open(*env);
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value()->flush().is_ok());
  EXPECT_EQ(store.value()->sstable_count(), 0u);
  ASSERT_TRUE(store.value()->put("k", to_bytes("v")).is_ok());
  EXPECT_EQ(store.value()->get("k").value(), to_bytes("v"));
}

TEST(KVStoreEdge, OverwriteChainAcrossManyTables) {
  auto env = make_mem_env();
  auto store = KVStore::open(*env);
  ASSERT_TRUE(store.is_ok());
  for (int gen = 0; gen < 8; ++gen) {
    ASSERT_TRUE(
        store.value()->put("key", to_bytes("gen" + std::to_string(gen)))
            .is_ok());
    ASSERT_TRUE(store.value()->flush().is_ok());
  }
  EXPECT_EQ(store.value()->sstable_count(), 8u);
  EXPECT_EQ(store.value()->get("key").value(), to_bytes("gen7"));
  ASSERT_TRUE(store.value()->checkpoint().is_ok());
  EXPECT_EQ(store.value()->sstable_count(), 1u);
  EXPECT_EQ(store.value()->get("key").value(), to_bytes("gen7"));
}

TEST(KVStoreEdge, ManifestCorruptionDetectedOnOpen) {
  auto env = make_mem_env();
  {
    auto store = KVStore::open(*env);
    ASSERT_TRUE(store.is_ok());
    ASSERT_TRUE(store.value()->put("k", to_bytes("v")).is_ok());
    ASSERT_TRUE(store.value()->flush().is_ok());
  }
  Bytes manifest = env->read_file("MANIFEST").value();
  manifest.resize(manifest.size() / 2);
  ASSERT_TRUE(env->write_file_atomic("MANIFEST", manifest).is_ok());
  EXPECT_FALSE(KVStore::open(*env).is_ok());
}

TEST(KVStoreEdge, LargeValuesRoundTrip) {
  auto env = make_mem_env();
  auto store = KVStore::open(*env);
  ASSERT_TRUE(store.is_ok());
  Rng rng(77);
  const Bytes big = rng.next_bytes(1 << 20);  // 1 MiB value
  ASSERT_TRUE(store.value()->put("big", big).is_ok());
  ASSERT_TRUE(store.value()->flush().is_ok());
  EXPECT_EQ(store.value()->get("big").value(), big);
}

TEST(KVStoreEdge, EmptyKeyAndEmptyValue) {
  auto env = make_mem_env();
  auto store = KVStore::open(*env);
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value()->put("", to_bytes("empty-key")).is_ok());
  ASSERT_TRUE(store.value()->put("empty-value", {}).is_ok());
  EXPECT_EQ(store.value()->get("").value(), to_bytes("empty-key"));
  EXPECT_EQ(store.value()->get("empty-value").value(), Bytes{});
  ASSERT_TRUE(store.value()->flush().is_ok());
  EXPECT_EQ(store.value()->get("").value(), to_bytes("empty-key"));
}

TEST(KVStoreEdge, ScanAcrossMemtableAndTables) {
  auto env = make_mem_env();
  auto store = KVStore::open(*env);
  ASSERT_TRUE(store.is_ok());
  ASSERT_TRUE(store.value()->put("a", to_bytes("1")).is_ok());
  ASSERT_TRUE(store.value()->flush().is_ok());
  ASSERT_TRUE(store.value()->put("b", to_bytes("2")).is_ok());
  ASSERT_TRUE(store.value()->checkpoint().is_ok());
  ASSERT_TRUE(store.value()->put("c", to_bytes("3")).is_ok());
  auto rows = store.value()->scan("", "zzz");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].first, "a");
  EXPECT_EQ(rows[2].first, "c");
}

}  // namespace
}  // namespace marlin::storage
