// Randomized property tests. The central invariant is the paper's
// Theorem 1 (safety): across arbitrary schedules — random drops, delays,
// crashes, view changes, forced unhappy paths — no two correct replicas
// ever commit conflicting blocks. Liveness (Theorem 2) is asserted on the
// runs whose fault rate permits it.
#include <gtest/gtest.h>

#include "protocol_harness.h"
#include "runtime/experiment.h"

namespace marlin {
namespace {

using consensus::ReplicaConfig;
using consensus::testing::BusMessage;
using consensus::testing::Kind;
using consensus::testing::op_of;
using consensus::testing::ProtocolHarness;

// ---------------------------------------------------------------------------
// Bus-level random schedules (fine-grained, fast)
// ---------------------------------------------------------------------------

struct ChaosParams {
  Kind kind;
  std::uint64_t seed;
  double drop_rate;
  bool disable_happy;
  bool threshold_sigs = false;
};

class BusChaos : public ::testing::TestWithParam<ChaosParams> {};

TEST_P(BusChaos, SafetyUnderRandomScheduleAndTimeouts) {
  const ChaosParams p = GetParam();
  ReplicaConfig cfg;
  cfg.disable_happy_path = p.disable_happy;
  cfg.use_threshold_sigs = p.threshold_sigs;
  ProtocolHarness h(p.kind, 1, cfg);
  Rng rng(p.seed);

  h.set_drop([&](const BusMessage&) { return rng.next_bool(p.drop_rate); });
  h.start_all();

  RequestId next_req = 1;
  for (int round = 0; round < 300; ++round) {
    const auto action = rng.next_below(10);
    if (action < 5) {
      h.submit_to_all(op_of(1, next_req++));
    } else if (action < 7) {
      // Random single-replica timeout (timer skew).
      h.timeout(static_cast<ReplicaId>(rng.next_below(h.n())));
    } else if (action == 7) {
      h.timeout_all();
    }
    // Deliver a random number of messages (interleaved schedule).
    const auto steps = rng.next_below(40);
    for (std::uint64_t s = 0; s < steps; ++s) {
      if (!h.step()) break;
    }
    ASSERT_TRUE(h.all_consistent()) << "seed " << p.seed << " round " << round;
  }

  // Heal and drain: everything must reconcile.
  h.set_drop(nullptr);
  // A couple of synchronized views to let a correct leader finish the job.
  for (int k = 0; k < 3; ++k) {
    h.submit_to_all(op_of(1, next_req++));
    h.timeout_all();
    h.deliver_all(500000);
  }
  ASSERT_TRUE(h.all_consistent());

  // Liveness after healing: at moderate fault rates something committed.
  if (p.drop_rate <= 0.2) {
    Height max_height = 0;
    for (ReplicaId r = 0; r < h.n(); ++r) {
      max_height = std::max(max_height, h.replica(r).committed_height());
    }
    EXPECT_GT(max_height, 0u) << "seed " << p.seed;
  }
}

std::vector<ChaosParams> chaos_grid() {
  std::vector<ChaosParams> out;
  for (Kind kind : {Kind::kMarlin, Kind::kHotStuff}) {
    for (std::uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
      for (double drop : {0.0, 0.1, 0.3}) {
        out.push_back({kind, seed, drop, false});
      }
    }
  }
  // Marlin with the happy path disabled: every view change exercises the
  // pre-prepare machinery.
  for (std::uint64_t seed : {55ull, 66ull, 77ull}) {
    out.push_back({Kind::kMarlin, seed, 0.15, true});
  }
  // Threshold-signature instantiation under chaos, both protocols.
  out.push_back({Kind::kMarlin, 88, 0.1, false, true});
  out.push_back({Kind::kMarlin, 89, 0.1, true, true});
  out.push_back({Kind::kHotStuff, 90, 0.1, false, true});
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BusChaos, ::testing::ValuesIn(chaos_grid()),
    [](const ::testing::TestParamInfo<ChaosParams>& info) {
      const auto& p = info.param;
      std::string name = p.kind == Kind::kMarlin ? "Marlin" : "HotStuff";
      name += "_seed" + std::to_string(p.seed);
      name += "_drop" + std::to_string(static_cast<int>(p.drop_rate * 100));
      if (p.disable_happy) name += "_unhappy";
      if (p.threshold_sigs) name += "_threshold";
      return name;
    });

// ---------------------------------------------------------------------------
// Crash-storm property (bus level)
// ---------------------------------------------------------------------------

class CrashStorm : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrashStorm, UpToFCrashesNeverBreakSafety) {
  Rng rng(GetParam());
  for (Kind kind : {Kind::kMarlin, Kind::kHotStuff}) {
    ProtocolHarness h(kind, /*f=*/2);  // n = 7
    h.start_all();
    RequestId next_req = 1;
    std::uint32_t crashed = 0;
    for (int round = 0; round < 150; ++round) {
      if (crashed < 2 && rng.next_bool(0.03)) {
        h.crash(static_cast<ReplicaId>(rng.next_below(h.n())));
        ++crashed;
      }
      if (rng.next_bool(0.5)) h.submit_to_all(op_of(1, next_req++));
      if (rng.next_bool(0.15)) h.timeout_all();
      const auto steps = rng.next_below(60);
      for (std::uint64_t s = 0; s < steps; ++s) {
        if (!h.step()) break;
      }
      ASSERT_TRUE(h.all_consistent());
    }
    h.submit_to_all(op_of(1, next_req++));
    h.timeout_all();
    h.deliver_all(500000);
    ASSERT_TRUE(h.all_consistent());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashStorm,
                         ::testing::Values(101, 202, 303, 404, 505));

// ---------------------------------------------------------------------------
// Simulator-level chaos (coarse-grained, realistic timing)
// ---------------------------------------------------------------------------

struct SimChaosParams {
  runtime::ProtocolKind protocol;
  std::uint64_t seed;
  double drop;
  std::uint32_t crashes;
};

class SimChaos : public ::testing::TestWithParam<SimChaosParams> {};

TEST_P(SimChaos, SafetyAndEventualConsistency) {
  const SimChaosParams p = GetParam();
  runtime::ClusterConfig cfg;
  cfg.f = 2;  // n = 7
  cfg.consensus.protocol = p.protocol;
  cfg.clients.count = 3;
  cfg.clients.window = 6;
  cfg.consensus.max_batch_ops = 200;
  cfg.seed = p.seed;
  cfg.net.drop_probability = p.drop;
  cfg.consensus.pacemaker.base_timeout = Duration::millis(700);

  sim::Simulator sim(p.seed);
  runtime::Cluster cluster(sim, cfg);
  cluster.start();

  Rng rng(p.seed ^ 0xabcdef);
  std::uint32_t crashed = 0;
  for (int epoch = 0; epoch < 20; ++epoch) {
    sim.run_for(Duration::millis(500 + rng.next_below(1500)));
    if (crashed < p.crashes) {
      ReplicaId victim = static_cast<ReplicaId>(rng.next_below(cluster.n()));
      if (!cluster.network().is_down(victim)) {
        cluster.crash_replica(victim);
        ++crashed;
      }
    }
    ASSERT_FALSE(cluster.any_safety_violation());
    ASSERT_TRUE(cluster.committed_heights_consistent());
  }
  // Quiet period: let the survivors converge.
  sim.run_for(Duration::seconds(10));
  ASSERT_FALSE(cluster.any_safety_violation());
  ASSERT_TRUE(cluster.committed_heights_consistent());
  if (p.drop <= 0.05) {
    Height max_height = 0;
    for (ReplicaId r = 0; r < cluster.n(); ++r) {
      if (cluster.network().is_down(r)) continue;
      max_height = std::max(max_height,
                            cluster.replica(r).protocol().committed_height());
    }
    EXPECT_GT(max_height, 3u);
  }
}

std::vector<SimChaosParams> sim_grid() {
  std::vector<SimChaosParams> out;
  for (auto protocol :
       {runtime::ProtocolKind::kMarlin, runtime::ProtocolKind::kHotStuff}) {
    out.push_back({protocol, 1111, 0.0, 2});
    out.push_back({protocol, 2222, 0.05, 1});
    out.push_back({protocol, 3333, 0.15, 2});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimChaos, ::testing::ValuesIn(sim_grid()),
    [](const ::testing::TestParamInfo<SimChaosParams>& info) {
      const auto& p = info.param;
      std::string name =
          p.protocol == runtime::ProtocolKind::kMarlin ? "Marlin" : "HotStuff";
      name += "_seed" + std::to_string(p.seed);
      name += "_crash" + std::to_string(p.crashes);
      return name;
    });

// ---------------------------------------------------------------------------
// State-machine replication property: identical execution order
// ---------------------------------------------------------------------------

TEST(SmrProperty, AllReplicasExecuteIdenticalOpSequences) {
  ProtocolHarness h(Kind::kMarlin);
  Rng rng(909);
  h.set_drop([&](const BusMessage&) { return rng.next_bool(0.05); });
  h.start_all();
  RequestId next_req = 1;
  for (int round = 0; round < 100; ++round) {
    h.submit_to_all(op_of(1 + rng.next_below(3), next_req++));
    if (rng.next_bool(0.1)) h.timeout_all();
    for (std::uint64_t s = 0; s < rng.next_below(50); ++s) {
      if (!h.step()) break;
    }
  }
  h.set_drop(nullptr);
  h.submit_to_all(op_of(1, next_req++));
  h.timeout_all();
  h.deliver_all(500000);

  // The delivered op sequence of every replica is a prefix of the longest.
  std::vector<std::pair<ClientId, RequestId>> longest;
  for (ReplicaId r = 0; r < h.n(); ++r) {
    std::vector<std::pair<ClientId, RequestId>> seq;
    for (const auto& b : h.delivered(r)) {
      for (const auto& op : b.ops) seq.emplace_back(op.client, op.request);
    }
    if (seq.size() > longest.size()) longest = seq;
  }
  EXPECT_GT(longest.size(), 10u);
  for (ReplicaId r = 0; r < h.n(); ++r) {
    std::vector<std::pair<ClientId, RequestId>> seq;
    for (const auto& b : h.delivered(r)) {
      for (const auto& op : b.ops) seq.emplace_back(op.client, op.request);
    }
    ASSERT_LE(seq.size(), longest.size());
    EXPECT_TRUE(std::equal(seq.begin(), seq.end(), longest.begin()))
        << "replica " << r << " diverged";
  }
}

TEST(SmrProperty, NoOperationExecutedTwice) {
  ProtocolHarness h(Kind::kMarlin);
  Rng rng(910);
  h.set_drop([&](const BusMessage&) { return rng.next_bool(0.08); });
  h.start_all();
  RequestId next_req = 1;
  for (int round = 0; round < 120; ++round) {
    // Clients "retransmit": the same request submitted repeatedly.
    h.submit_to_all(op_of(1, next_req));
    if (rng.next_bool(0.6)) ++next_req;
    if (rng.next_bool(0.12)) h.timeout_all();
    for (std::uint64_t s = 0; s < rng.next_below(60); ++s) {
      if (!h.step()) break;
    }
  }
  h.set_drop(nullptr);
  h.deliver_all(500000);

  for (ReplicaId r = 0; r < h.n(); ++r) {
    std::set<std::pair<ClientId, RequestId>> seen;
    for (const auto& b : h.delivered(r)) {
      for (const auto& op : b.ops) {
        EXPECT_TRUE(seen.emplace(op.client, op.request).second)
            << "duplicate execution of (" << op.client << "," << op.request
            << ") at replica " << r;
      }
    }
  }
}

}  // namespace
}  // namespace marlin

namespace marlin {
namespace {

// ---------------------------------------------------------------------------
// Lemma-level invariants observed on the wire
// ---------------------------------------------------------------------------

// Lemma 1/2 consequence: within one view, at most one block per (view,
// height) can gather a prepareQC — equal-rank prepareQCs certify equal
// blocks. Observed over every QC that crosses the bus during chaotic runs.
class LemmaObserver : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LemmaObserver, PrepareQcsUniquePerViewHeight) {
  using consensus::testing::peek;
  ProtocolHarness h(Kind::kMarlin);
  Rng rng(GetParam());

  std::map<std::pair<ViewNumber, Height>, types::Hash256> prepare_qcs;
  bool contradiction = false;
  h.set_drop([&](const BusMessage& m) {
    auto record = [&](const types::QuorumCert& qc) {
      if (qc.type != types::QcType::kPrepare || qc.is_genesis()) return;
      auto [it, inserted] =
          prepare_qcs.try_emplace({qc.view, qc.height}, qc.block_hash);
      if (!inserted && it->second != qc.block_hash) contradiction = true;
    };
    if (auto n = peek<types::QcNoticeMsg>(m, types::MsgKind::kQcNotice)) {
      record(n->qc);
      if (n->aux) record(*n->aux);
    }
    if (auto p = peek<types::ProposalMsg>(m, types::MsgKind::kProposal)) {
      for (const auto& e : p->entries) {
        if (e.justify.qc) record(*e.justify.qc);
        if (e.justify.vc) record(*e.justify.vc);
      }
    }
    if (auto v = peek<types::ViewChangeMsg>(m, types::MsgKind::kViewChange)) {
      if (v->high_qc.qc) record(*v->high_qc.qc);
      if (v->high_qc.vc) record(*v->high_qc.vc);
    }
    return rng.next_bool(0.1);  // plus 10% loss for chaos
  });

  h.start_all();
  RequestId next_req = 1;
  for (int round = 0; round < 200; ++round) {
    if (rng.next_bool(0.6)) h.submit_to_all(op_of(1, next_req++));
    if (rng.next_bool(0.1)) h.timeout_all();
    if (rng.next_bool(0.1)) {
      h.timeout(static_cast<ReplicaId>(rng.next_below(h.n())));
    }
    for (std::uint64_t s = 0; s < rng.next_below(50); ++s) {
      if (!h.step()) break;
    }
    ASSERT_FALSE(contradiction) << "two conflicting prepareQCs at one "
                                   "(view, height) — Lemma 2 violated";
  }
  EXPECT_GT(prepare_qcs.size(), 5u);  // the run actually certified blocks
  EXPECT_TRUE(h.all_consistent());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LemmaObserver,
                         ::testing::Values(31337, 42424, 53535));

// Lemma 4 consequence: a leader's view-change snapshot resolves to at most
// two equal-rank pre-prepareQC candidates; our leader asserts this
// structurally by never proposing more than two pre-prepare entries.
TEST(LemmaObserver, PrePrepareProposalsNeverExceedTwoEntries) {
  using consensus::testing::peek;
  ReplicaConfig cfg;
  cfg.disable_happy_path = true;
  ProtocolHarness h(Kind::kMarlin, 1, cfg);
  Rng rng(777);
  bool too_many = false;
  h.set_drop([&](const BusMessage& m) {
    if (auto p = peek<types::ProposalMsg>(m, types::MsgKind::kProposal)) {
      if (p->phase == types::Phase::kPrePrepare && p->entries.size() > 2) {
        too_many = true;
      }
    }
    return rng.next_bool(0.15);
  });
  h.start_all();
  RequestId next_req = 1;
  for (int round = 0; round < 150; ++round) {
    if (rng.next_bool(0.5)) h.submit_to_all(op_of(1, next_req++));
    if (rng.next_bool(0.2)) h.timeout_all();
    for (std::uint64_t s = 0; s < rng.next_below(60); ++s) {
      if (!h.step()) break;
    }
    ASSERT_FALSE(too_many);
  }
  EXPECT_TRUE(h.all_consistent());
}

}  // namespace
}  // namespace marlin
