// Unit tests for the observability subsystem: TraceSink ring semantics,
// event-type naming, metrics registry merging, histogram interpolation,
// and the JSONL / JSON / CSV exporters (including round-tripping).
#include <gtest/gtest.h>

#include <sstream>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace marlin::obs {
namespace {

// ---------------------------------------------------------------------------
// TraceSink
// ---------------------------------------------------------------------------

TEST(TraceSink, StampsSequenceAndClock) {
  TraceSink sink(16);
  std::int64_t now_ns = 0;
  sink.set_clock([&] { return TimePoint::origin() + Duration::nanos(now_ns); });

  now_ns = 1000;
  EXPECT_EQ(sink.record({.type = EventType::kCommit}), 0u);
  now_ns = 2500;
  EXPECT_EQ(sink.record({.type = EventType::kCommit}), 1u);

  auto events = sink.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].at.as_nanos(), 1000);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[1].at.as_nanos(), 2500);
}

TEST(TraceSink, RingEvictsOldestKeepingOrder) {
  TraceSink sink(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    sink.record({.type = EventType::kCommit, .height = i});
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.total_recorded(), 10u);
  EXPECT_EQ(sink.evicted(), 6u);
  auto events = sink.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].height, 6 + i);
    EXPECT_EQ(events[i].seq, 6 + i);
    if (i > 0) {
      EXPECT_LT(events[i - 1].seq, events[i].seq);
    }
  }
}

TEST(TraceSink, DisabledTypesAreSkippedWithoutSeqGaps) {
  TraceSink sink(16);
  sink.set_enabled(EventType::kWalWrite, false);
  sink.record({.type = EventType::kCommit});
  sink.record({.type = EventType::kWalWrite});
  sink.record({.type = EventType::kCommit});
  auto events = sink.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].seq, 1u);

  sink.set_enabled(EventType::kWalWrite, true);
  sink.record({.type = EventType::kWalWrite});
  EXPECT_EQ(sink.size(), 3u);
}

TEST(TraceSink, ClearRestartsNumbering) {
  TraceSink sink(8);
  sink.record({.type = EventType::kCommit});
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.record({.type = EventType::kCommit}), 0u);
}

TEST(TraceSink, RingSurvivesManyWraps) {
  TraceSink sink(4);
  for (std::uint64_t i = 0; i < 103; ++i) {
    sink.record({.type = EventType::kCommit, .height = i});
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.total_recorded(), 103u);
  EXPECT_EQ(sink.evicted(), 99u);
  auto events = sink.events();
  ASSERT_EQ(events.size(), 4u);
  // The survivors are the newest 4, oldest first, regardless of how many
  // times the head wrapped around in between.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].height, 99 + i);
    EXPECT_EQ(events[i].seq, 99 + i);
  }
}

TEST(TraceSink, ExactCapacityDoesNotEvict) {
  TraceSink sink(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    sink.record({.type = EventType::kCommit, .height = i});
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.evicted(), 0u);
  EXPECT_EQ(sink.events().front().seq, 0u);
  // The very next record is the first eviction.
  sink.record({.type = EventType::kCommit, .height = 4});
  EXPECT_EQ(sink.evicted(), 1u);
  EXPECT_EQ(sink.events().front().seq, 1u);
}

TEST(TraceSink, CapacityOneKeepsOnlyTheNewest) {
  TraceSink sink(1);
  for (std::uint64_t i = 0; i < 5; ++i) {
    sink.record({.type = EventType::kCommit, .height = i});
  }
  EXPECT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.evicted(), 4u);
  auto events = sink.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].height, 4u);
  EXPECT_EQ(events[0].seq, 4u);
}

TEST(TraceSink, ClearAfterWrapResetsEvictionAccounting) {
  TraceSink sink(2);
  for (std::uint64_t i = 0; i < 7; ++i) {
    sink.record({.type = EventType::kCommit, .height = i});
  }
  EXPECT_EQ(sink.evicted(), 5u);
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.total_recorded(), 0u);
  EXPECT_EQ(sink.evicted(), 0u);
  // Numbering and eviction both restart from scratch.
  EXPECT_EQ(sink.record({.type = EventType::kCommit, .height = 100}), 0u);
  sink.record({.type = EventType::kCommit, .height = 101});
  sink.record({.type = EventType::kCommit, .height = 102});
  EXPECT_EQ(sink.evicted(), 1u);
  EXPECT_EQ(sink.events().front().height, 101u);
}

TEST(TraceSink, FilterMaskCoversTypesPastBit31) {
  // The taxonomy has grown past 16 entries; the enable mask must be
  // 64-bit so high-numbered types can be disabled (a 32-bit `1u << t`
  // would overflow for t >= 32 and silently disable the wrong type).
  static_assert(kEventTypeCount <= 64);
  TraceSink sink(16);
  const auto last = static_cast<EventType>(kEventTypeCount - 1);
  sink.set_enabled(last, false);
  EXPECT_FALSE(sink.enabled(last));
  // No other type was affected.
  for (std::size_t t = 0; t + 1 < kEventTypeCount; ++t) {
    EXPECT_TRUE(sink.enabled(static_cast<EventType>(t))) << t;
  }
  sink.record({.type = last});
  EXPECT_EQ(sink.size(), 0u);
  sink.set_enabled(last, true);
  sink.record({.type = last});
  EXPECT_EQ(sink.size(), 1u);
}

TEST(TraceNames, RoundTripAllTypes) {
  for (std::size_t t = 0; t < kEventTypeCount; ++t) {
    const auto type = static_cast<EventType>(t);
    EXPECT_EQ(event_type_from_name(event_type_name(type)), type);
  }
  EXPECT_EQ(event_type_from_name("no_such_event"), EventType::kCount);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(Metrics, CountersAndGaugesByLabel) {
  MetricsRegistry reg;
  reg.counter("commits") += 3;
  reg.counter("commits", "replica=1") += 2;
  reg.gauge("height") = 17;
  EXPECT_EQ(reg.counter_value("commits"), 3u);
  EXPECT_EQ(reg.counter_value("commits", "replica=1"), 2u);
  EXPECT_EQ(reg.counter_value("commits", "replica=2"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("height"), 17);
}

TEST(Metrics, MergeAddsCountersAndMaxesGauges) {
  MetricsRegistry a, b;
  a.counter("ops") = 5;
  b.counter("ops") = 7;
  b.counter("only_b") = 1;
  a.gauge("view") = 3;
  b.gauge("view") = 9;
  a.latency("lat").record(Duration::millis(10));
  b.latency("lat").record(Duration::millis(30));

  a.merge_from(b);
  EXPECT_EQ(a.counter_value("ops"), 12u);
  EXPECT_EQ(a.counter_value("only_b"), 1u);
  EXPECT_DOUBLE_EQ(a.gauge_value("view"), 9);
  EXPECT_EQ(a.latencies().at({"lat", ""}).count(), 2u);
}

TEST(ValueHistogramTest, InterpolatedPercentiles) {
  ValueHistogram h;
  for (std::uint64_t v : {10u, 20u, 30u, 40u}) h.record(v);
  EXPECT_DOUBLE_EQ(h.percentile(0), 10);
  EXPECT_DOUBLE_EQ(h.percentile(100), 40);
  // rank = 0.5 * 3 = 1.5 -> halfway between 20 and 30.
  EXPECT_DOUBLE_EQ(h.percentile(50), 25);
  EXPECT_DOUBLE_EQ(h.percentile(25), 17.5);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 40u);
  EXPECT_DOUBLE_EQ(h.mean(), 25);
}

TEST(ValueHistogramTest, EmptyIsZeroEverywhere) {
  ValueHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 0);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(ValueHistogramTest, SingleSampleIsEveryPercentile) {
  ValueHistogram h;
  h.record(42);
  // With n == 1 the interpolation rank is always 0, so every quantile,
  // including both bounds, is the lone sample.
  EXPECT_DOUBLE_EQ(h.percentile(0), 42);
  EXPECT_DOUBLE_EQ(h.percentile(50), 42);
  EXPECT_DOUBLE_EQ(h.percentile(99), 42);
  EXPECT_DOUBLE_EQ(h.percentile(100), 42);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_DOUBLE_EQ(h.mean(), 42);
  EXPECT_EQ(h.sum(), 42u);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(Export, EventJsonRoundTrip) {
  TraceEvent e;
  e.seq = 42;
  e.at = TimePoint::origin() + Duration::micros(1234);
  e.node = 3;
  e.type = EventType::kQcFormed;
  e.phase = 1;  // prepare
  e.kind = 4;
  e.view = 7;
  e.height = 19;
  e.block = 0xdeadbeefcafef00dull;
  e.a = 11;
  e.b = 22;
  e.c = 33;

  const std::string line = event_to_json(e);
  TraceEvent back;
  ASSERT_TRUE(event_from_json(line, &back)) << line;
  EXPECT_EQ(back, e);
}

TEST(Export, EventJsonRoundTripsSentinels) {
  TraceEvent e;  // node = kNoNode, phase = kNoPhase, everything else zero
  e.type = EventType::kMsgDropped;
  const std::string line = event_to_json(e);
  TraceEvent back;
  ASSERT_TRUE(event_from_json(line, &back)) << line;
  EXPECT_EQ(back.node, kNoNode);
  EXPECT_EQ(back.phase, kNoPhase);
  EXPECT_EQ(back, e);
}

TEST(Export, RejectsMalformedLines) {
  TraceEvent out;
  EXPECT_FALSE(event_from_json("", &out));
  EXPECT_FALSE(event_from_json("{\"type\":\"bogus_event\"}", &out));
}

TEST(Export, JsonlOneLinePerEvent) {
  TraceSink sink(8);
  sink.record({.type = EventType::kCommit, .height = 1});
  sink.record({.type = EventType::kCommit, .height = 2});
  const std::string jsonl = trace_to_jsonl(sink);
  std::istringstream in(jsonl);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    TraceEvent e;
    EXPECT_TRUE(event_from_json(line, &e));
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

TEST(Export, MetricsJsonAndCsvAreDeterministic) {
  MetricsRegistry reg;
  reg.counter("z.last") = 1;
  reg.counter("a.first") = 2;
  reg.gauge("g", "replica=0") = 0.5;
  reg.latency("lat").record(Duration::millis(3));
  reg.sizes("sz").record(100);

  const std::string json = metrics_to_json(reg);
  const std::string csv = metrics_to_csv(reg);
  // Ordered maps: a.first serializes before z.last.
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(csv.find("metric,label,field,value"), std::string::npos);
  EXPECT_NE(csv.find("g,replica=0,value,0.500"), std::string::npos);
  // Re-exporting the same registry is byte-identical.
  EXPECT_EQ(json, metrics_to_json(reg));
  EXPECT_EQ(csv, metrics_to_csv(reg));
}

TEST(Export, ViewTimelineGroupsByView) {
  TraceSink sink(32);
  std::int64_t t = 0;
  sink.set_clock([&] { return TimePoint::origin() + Duration::millis(t); });
  t = 5;
  sink.record({.node = 1, .type = EventType::kViewEntered, .view = 1});
  t = 10;
  sink.record(
      {.node = 1, .type = EventType::kProposalSent, .view = 1, .height = 1});
  t = 90;
  sink.record({.node = 1,
               .type = EventType::kCommit,
               .view = 1,
               .height = 1,
               .a = 4,
               .b = 4});
  std::ostringstream out;
  print_view_timeline(sink.events(), out);
  const std::string s = out.str();
  EXPECT_NE(s.find("view"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
}

}  // namespace
}  // namespace marlin::obs
