// Span stitching and critical-path extraction over real simulated traces:
// Marlin's commit critical path has exactly two network round trips,
// HotStuff's has three (the paper's linearity claim, one round trip
// apart), and both the span export and the critical-path report are
// byte-identical across same-seed runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "obs/critical_path.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "runtime/cluster.h"

namespace marlin {
namespace {

using obs::CostKind;
using obs::CriticalPath;
using obs::EventType;
using obs::TraceEvent;
using runtime::Cluster;
using runtime::ClusterConfig;
using runtime::ProtocolKind;

ClusterConfig tiny_config(ProtocolKind protocol) {
  ClusterConfig cfg;
  cfg.f = 1;
  cfg.consensus.protocol = protocol;
  cfg.clients.count = 2;
  cfg.clients.window = 4;
  cfg.consensus.pipelined = false;
  cfg.seed = 7;
  return cfg;
}

std::vector<TraceEvent> run_traced(ClusterConfig cfg, int secs,
                                   obs::TraceSink* sink) {
  sim::Simulator sim(cfg.seed);
  cfg.trace = sink;
  Cluster cluster(sim, cfg);
  cluster.start();
  sim.run_for(Duration::seconds(secs));
  EXPECT_FALSE(cluster.any_safety_violation());
  return sink->events();
}

const CriticalPath* first_complete(const std::vector<CriticalPath>& paths) {
  for (const CriticalPath& p : paths) {
    if (p.complete) return &p;
  }
  return nullptr;
}

TEST(CriticalPath, MarlinHasTwoRoundTrips) {
  obs::TraceSink sink{1u << 17};
  const auto events = run_traced(tiny_config(ProtocolKind::kMarlin), 3, &sink);
  const auto paths = obs::critical_paths(events);
  const CriticalPath* p = first_complete(paths);
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(p->three_phase);
  EXPECT_EQ(p->round_trips, 2u);
  // Out and back legs alternate around each QC; the path ends at commit.
  ASSERT_FALSE(p->edges.empty());
  EXPECT_EQ(p->edges.back().label, "decide.out");
  // Every complete path in a Marlin run agrees on the round-trip count.
  for (const CriticalPath& path : paths) {
    if (path.complete) EXPECT_EQ(path.round_trips, 2u);
  }
}

TEST(CriticalPath, HotStuffHasThreeRoundTrips) {
  obs::TraceSink sink{1u << 17};
  const auto events =
      run_traced(tiny_config(ProtocolKind::kHotStuff), 3, &sink);
  const auto paths = obs::critical_paths(events);
  const CriticalPath* p = first_complete(paths);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->three_phase);
  EXPECT_EQ(p->round_trips, 3u);
}

TEST(CriticalPath, MarlinSavesExactlyOneRoundTrip) {
  obs::TraceSink msink{1u << 17};
  obs::TraceSink hsink{1u << 17};
  const auto m = run_traced(tiny_config(ProtocolKind::kMarlin), 3, &msink);
  const auto h = run_traced(tiny_config(ProtocolKind::kHotStuff), 3, &hsink);
  const auto mpaths = obs::critical_paths(m);
  const auto hpaths = obs::critical_paths(h);
  const CriticalPath* mp = first_complete(mpaths);
  const CriticalPath* hp = first_complete(hpaths);
  ASSERT_NE(mp, nullptr);
  ASSERT_NE(hp, nullptr);
  EXPECT_EQ(hp->round_trips, mp->round_trips + 1);
  // One fewer 40 ms round trip is visible in the totals too.
  EXPECT_LT(mp->total.as_millis_f(), hp->total.as_millis_f());
}

TEST(CriticalPath, NetworkEdgesAreWireDominatedOnThePaperTestbed) {
  obs::TraceSink sink{1u << 17};
  const auto events = run_traced(tiny_config(ProtocolKind::kMarlin), 3, &sink);
  const auto paths = obs::critical_paths(events);
  const CriticalPath* p = first_complete(paths);
  ASSERT_NE(p, nullptr);
  for (const auto& e : p->edges) {
    if (!e.network) continue;
    // 40 ms propagation dwarfs queueing and crypto at this scale.
    EXPECT_EQ(e.dominant, CostKind::kLink) << e.label;
    EXPECT_GT(e.wire.as_millis_f(), 39.0) << e.label;
    // The decomposition accounts for the whole edge.
    const double sum_ms = (e.queue + e.wire + e.cpu).as_millis_f();
    EXPECT_NEAR(sum_ms, e.duration().as_millis_f(), 0.001) << e.label;
  }
}

TEST(Spans, CommittedBlockHasFullLifecycle) {
  obs::TraceSink sink{1u << 17};
  const auto events = run_traced(tiny_config(ProtocolKind::kMarlin), 3, &sink);
  const auto blocks = obs::build_spans(events);
  ASSERT_FALSE(blocks.empty());
  const obs::BlockSpans* committed = nullptr;
  for (const auto& b : blocks) {
    if (b.committed) {
      committed = &b;
      break;
    }
  }
  ASSERT_NE(committed, nullptr);
  // The umbrella covers every child and children appear in causal order.
  std::vector<std::string> names;
  for (const auto& s : committed->children) {
    names.push_back(s.name);
    EXPECT_GE(s.begin, committed->umbrella.begin) << s.name;
    EXPECT_LE(s.end, committed->umbrella.end) << s.name;
    EXPECT_LE(s.begin, s.end) << s.name;
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "proposal.broadcast"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "votes.prepare"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "votes.commit"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "commit.spread"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "reply.delivery"),
            names.end());
}

TEST(Spans, SameSeedOutputsAreByteIdentical) {
  obs::TraceSink a{1u << 17};
  obs::TraceSink b{1u << 17};
  const auto ea = run_traced(tiny_config(ProtocolKind::kMarlin), 3, &a);
  const auto eb = run_traced(tiny_config(ProtocolKind::kMarlin), 3, &b);
  EXPECT_EQ(obs::spans_to_chrome_json(obs::build_spans(ea)),
            obs::spans_to_chrome_json(obs::build_spans(eb)));
  EXPECT_EQ(obs::critical_path_report(ea), obs::critical_path_report(eb));
}

TEST(Spans, ReportMentionsRoundTripCounts) {
  obs::TraceSink sink{1u << 17};
  const auto events = run_traced(tiny_config(ProtocolKind::kMarlin), 3, &sink);
  const std::string report = obs::critical_path_report(events);
  EXPECT_NE(report.find("network round trips: 2"), std::string::npos);
  EXPECT_NE(report.find("== marlin (two-phase) =="), std::string::npos);
}

}  // namespace
}  // namespace marlin
