// Zero-copy broadcast fabric tests: a broadcast serializes exactly once and
// every receiver shares the same underlying buffer (asserted via the
// network's delivery probe and Payload buffer identity); traffic accounting
// still counts each logical frame; Byzantine wire mutators copy-on-write —
// only tampered destinations get a private buffer.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "faults/byzantine.h"
#include "runtime/cluster.h"
#include "simnet/network.h"

namespace marlin::runtime {
namespace {

using sim::NodeId;

// Buffer-identity groups observed at delivery: for each (sender, buffer
// pointer) of a given wire kind, which destinations received that exact
// buffer. One broadcast that serialized once shows up as a single group
// covering every destination.
struct ProbeGroups {
  std::map<std::pair<NodeId, const std::uint8_t*>, std::set<NodeId>> groups;
  // Holding a reference to every observed buffer keeps it alive, so the
  // allocator can never hand a later serialization the same address —
  // pointer identity stays a faithful buffer identity for the whole run.
  std::vector<Payload> retained;

  void attach(sim::Network& net, std::uint8_t kind) {
    net.set_delivery_probe(
        [this, kind](NodeId from, NodeId to, const Payload& p) {
          if (p.empty() || p[0] != kind) return;
          auto [it, inserted] = groups.try_emplace({from, p.data()});
          if (inserted) retained.push_back(p);
          it->second.insert(to);
        });
  }
};

constexpr std::uint8_t kProposalKind = 3;  // types::MsgKind::kProposal

TEST(Fabric, BroadcastSharesOneBufferAcrossAllReceivers) {
  sim::Simulator sim(1);
  ClusterConfig cfg;
  cfg.f = 2;  // n = 7
  cfg.seed = 11;
  cfg.clients.count = 2;
  cfg.clients.window = 8;
  Cluster cluster(sim, cfg);

  ProbeGroups probe;
  probe.attach(cluster.network(), kProposalKind);

  cluster.start();
  sim.run_until(TimePoint::origin() + Duration::seconds(2));

  // At least one proposal broadcast must have reached all 7 replicas
  // through one shared buffer — i.e. it was serialized exactly once.
  bool found_full_group = false;
  for (const auto& [key, dests] : probe.groups) {
    if (dests.size() == cluster.n()) {
      found_full_group = true;
      break;
    }
  }
  EXPECT_TRUE(found_full_group)
      << "no proposal broadcast delivered one shared buffer to all "
      << cluster.n() << " replicas";
  EXPECT_GT(cluster.replica(0).metrics().counter("replica.committed_ops"), 0u);
}

TEST(Fabric, SharedPayloadStillCountsEveryLogicalFrame) {
  // Physical sharing must not change the traffic books: a payload sent to
  // three destinations counts three sends and three deliveries, with bytes
  // accounted per frame — identical to three independent copies.
  sim::Simulator sim(9);
  sim::NetConfig net_cfg;
  net_cfg.jitter = Duration::zero();
  sim::Network net(sim, net_cfg);
  struct Sink : sim::NetworkNode {
    int count = 0;
    void on_message(NodeId, Payload) override { ++count; }
  };
  Sink nodes[4];
  for (auto& n : nodes) net.add_node(&n);

  const Bytes frame(1000, 0x04);  // leading byte 4 = "vote" kind slot
  const Payload shared{Bytes(frame)};
  for (NodeId to = 1; to <= 3; ++to) net.send(0, to, shared);
  sim.run();

  EXPECT_EQ(net.stats(0).messages_sent, 3u);
  EXPECT_EQ(net.stats(0).bytes_sent, 3000u);
  EXPECT_EQ(net.stats(0).msgs_sent_by_kind[4], 3u);
  EXPECT_EQ(net.stats(0).bytes_sent_by_kind[4], 3000u);
  for (NodeId to = 1; to <= 3; ++to) {
    EXPECT_EQ(nodes[to].count, 1);
    EXPECT_EQ(net.stats(to).messages_delivered, 1u);
    EXPECT_EQ(net.stats(to).bytes_delivered, 1000u);
    EXPECT_EQ(net.stats(to).bytes_delivered_by_kind[4], 1000u);
  }
}

TEST(Fabric, EquivocatingLeaderCopiesOnWriteOnlyForTamperedPeers) {
  // Leader of view 1 (replica 1) equivocates: odd-id peers get a tampered
  // proposal (private buffer), everyone else keeps sharing the honest
  // serialization. The box mutates per destination, so one broadcast splits
  // into one shared group (self + even ids) plus per-odd-peer copies.
  sim::Simulator sim(1);
  ClusterConfig cfg;
  cfg.f = 2;  // n = 7; quorum 5 = leader + even ids, so view 1 makes progress
  cfg.seed = 23;
  cfg.clients.count = 2;
  cfg.clients.window = 8;
  Cluster cluster(sim, cfg);
  cluster.set_byzantine(1, faults::ByzantineMode::kEquivocate);

  ProbeGroups probe;
  probe.attach(cluster.network(), kProposalKind);

  cluster.start();
  sim.run_until(TimePoint::origin() + Duration::seconds(2));

  ASSERT_GT(cluster.replica(1).byzantine().interventions(), 0u)
      << "equivocation never triggered";

  // Find a broadcast where the honest buffer reached every even id (and
  // the leader itself) while the tampered odd ids are absent from it.
  const std::set<NodeId> honest_dests{0, 1, 2, 4, 6};
  bool found_cow_split = false;
  for (const auto& [key, dests] : probe.groups) {
    if (key.first != 1) continue;
    if (dests == honest_dests) {
      found_cow_split = true;
      break;
    }
  }
  EXPECT_TRUE(found_cow_split)
      << "no proposal broadcast from the equivocator split into the "
         "honest shared group {0,1,2,4,6}";
  // Odd peers still received proposals from the leader — via their own
  // (tampered) buffers.
  bool odd_received = false;
  for (const auto& [key, dests] : probe.groups) {
    if (key.first != 1) continue;
    if (dests.count(3) != 0 || dests.count(5) != 0) {
      EXPECT_TRUE(dests.count(0) == 0 && dests.count(2) == 0 &&
                  dests.count(4) == 0 && dests.count(6) == 0)
          << "a tampered buffer leaked to an honest-group destination";
      odd_received = true;
    }
  }
  EXPECT_TRUE(odd_received);
  EXPECT_FALSE(cluster.any_safety_violation());
}

}  // namespace
}  // namespace marlin::runtime
