// End-to-end integration tests on the full simulated testbed: replicas +
// clients over the latency/bandwidth network, with crypto/storage cost
// charging, pacemakers, crash faults, rotating leaders, partitions, and
// partial synchrony (pre-GST chaos).
#include <gtest/gtest.h>

#include "runtime/experiment.h"

namespace marlin::runtime {
namespace {

ClusterConfig small_config(ProtocolKind protocol) {
  ClusterConfig cfg;
  cfg.f = 1;
  cfg.consensus.protocol = protocol;
  cfg.clients.count = 4;
  cfg.clients.window = 8;
  cfg.consensus.max_batch_ops = 500;
  cfg.seed = 1234;
  return cfg;
}

class BothProtocols : public ::testing::TestWithParam<ProtocolKind> {};

INSTANTIATE_TEST_SUITE_P(Protocols, BothProtocols,
                         ::testing::Values(ProtocolKind::kMarlin,
                                           ProtocolKind::kHotStuff),
                         [](const auto& info) {
                           return info.param == ProtocolKind::kMarlin
                                      ? "Marlin"
                                      : "HotStuff";
                         });

TEST_P(BothProtocols, SteadyStateCommits) {
  auto res = run_experiment(throughput_options(
      small_config(GetParam()), Duration::seconds(2), Duration::seconds(6)));
  EXPECT_GT(res.throughput_ops, 50.0);
  EXPECT_TRUE(res.safety_ok);
  EXPECT_TRUE(res.consistent);
  EXPECT_EQ(res.final_view, 1u);  // stable leader, no spurious view changes
  EXPECT_GT(res.total_completed, 0u);
}

TEST_P(BothProtocols, AllClientRequestsEventuallyComplete) {
  ClusterConfig cfg = small_config(GetParam());
  cfg.clients.max_requests = 50;  // each client stops after 50 requests
  sim::Simulator sim(cfg.seed);
  Cluster cluster(sim, cfg);
  cluster.start();
  sim.run_for(Duration::seconds(30));
  for (ClientId c = 0; c < cfg.clients.count; ++c) {
    EXPECT_EQ(cluster.client(c).issued(), 50u);
    EXPECT_EQ(cluster.client(c).in_flight(), 0u);
    EXPECT_EQ(cluster.client(c).latency().count(), 50u);
  }
  EXPECT_FALSE(cluster.any_safety_violation());
}

TEST_P(BothProtocols, MarlinLatencyIsLower) {
  // Not parameterized work per se: assert the headline latency ordering.
  auto marlin = run_experiment(throughput_options(
      small_config(ProtocolKind::kMarlin), Duration::seconds(2),
      Duration::seconds(6)));
  auto hotstuff = run_experiment(throughput_options(
      small_config(ProtocolKind::kHotStuff), Duration::seconds(2),
      Duration::seconds(6)));
  // Marlin commits in two phases instead of three. The closed-loop beat
  // alignment absorbs part of the saved round-trip, so assert a clear but
  // conservative margin (≥ 30 ms at a 40 ms one-way delay).
  EXPECT_LT(marlin.p50_latency_ms + 30, hotstuff.p50_latency_ms);
}

TEST_P(BothProtocols, LeaderCrashRecovers) {
  ClusterConfig cfg = small_config(GetParam());
  cfg.consensus.pacemaker.base_timeout = Duration::millis(800);
  sim::Simulator sim(cfg.seed);
  Cluster cluster(sim, cfg);
  cluster.start();
  sim.run_for(Duration::seconds(3));
  const auto committed_before = cluster.replica(0).protocol().committed_height();
  EXPECT_GT(committed_before, 0u);

  cluster.crash_replica(cluster.current_leader());
  sim.run_for(Duration::seconds(10));

  // Committing resumed well past the pre-crash height.
  for (ReplicaId r = 0; r < cluster.n(); ++r) {
    if (cluster.network().is_down(r)) continue;
    EXPECT_GT(cluster.replica(r).protocol().committed_height(),
              committed_before + 3)
        << "replica " << r;
    EXPECT_GE(cluster.replica(r).protocol().current_view(), 2u);
  }
  EXPECT_FALSE(cluster.any_safety_violation());
  EXPECT_TRUE(cluster.committed_heights_consistent());
}

TEST_P(BothProtocols, SurvivesFSuccessiveLeaderCrashes) {
  ClusterConfig cfg = small_config(GetParam());
  cfg.f = 2;  // n = 7, tolerate 2 crashes
  cfg.consensus.pacemaker.base_timeout = Duration::millis(800);
  sim::Simulator sim(cfg.seed);
  Cluster cluster(sim, cfg);
  cluster.start();
  sim.run_for(Duration::seconds(3));

  for (int i = 0; i < 2; ++i) {
    cluster.crash_replica(cluster.current_leader());
    sim.run_for(Duration::seconds(8));
  }
  Height max_height = 0;
  for (ReplicaId r = 0; r < cluster.n(); ++r) {
    if (cluster.network().is_down(r)) continue;
    max_height =
        std::max(max_height, cluster.replica(r).protocol().committed_height());
  }
  EXPECT_GT(max_height, 5u);
  EXPECT_FALSE(cluster.any_safety_violation());
  EXPECT_TRUE(cluster.committed_heights_consistent());
}

TEST_P(BothProtocols, RotatingLeaderModeProgresses) {
  ClusterConfig cfg = small_config(GetParam());
  cfg.consensus.pacemaker.rotate_on_timer = true;
  cfg.consensus.pacemaker.rotation_interval = Duration::millis(700);
  sim::Simulator sim(cfg.seed);
  Cluster cluster(sim, cfg);
  cluster.start();
  sim.run_for(Duration::seconds(10));
  // Leader rotated many times and commits continued.
  EXPECT_GE(cluster.max_view(), 8u);
  for (ReplicaId r = 0; r < cluster.n(); ++r) {
    EXPECT_GT(cluster.replica(r).protocol().committed_height(), 5u);
  }
  EXPECT_FALSE(cluster.any_safety_violation());
  EXPECT_TRUE(cluster.committed_heights_consistent());
}

TEST_P(BothProtocols, RotatingLeaderWithCrashes) {
  ClusterConfig cfg = small_config(GetParam());
  cfg.f = 3;  // n = 13, as in the paper's Fig. 10j
  cfg.consensus.pacemaker.rotate_on_timer = true;
  cfg.consensus.pacemaker.rotation_interval = Duration::seconds(1);
  sim::Simulator sim(cfg.seed);
  Cluster cluster(sim, cfg);
  cluster.start();
  cluster.crash_replica(2);
  cluster.crash_replica(5);
  cluster.crash_replica(8);
  sim.run_for(Duration::seconds(20));
  Height max_height = 0;
  for (ReplicaId r = 0; r < cluster.n(); ++r) {
    if (cluster.network().is_down(r)) continue;
    max_height =
        std::max(max_height, cluster.replica(r).protocol().committed_height());
  }
  EXPECT_GT(max_height, 5u);
  EXPECT_FALSE(cluster.any_safety_violation());
  EXPECT_TRUE(cluster.committed_heights_consistent());
}

TEST_P(BothProtocols, MessageLossIsTolerated) {
  ClusterConfig cfg = small_config(GetParam());
  cfg.net.drop_probability = 0.02;  // 2% loss on every link
  cfg.consensus.pacemaker.base_timeout = Duration::millis(900);
  sim::Simulator sim(cfg.seed);
  Cluster cluster(sim, cfg);
  cluster.start();
  sim.run_for(Duration::seconds(20));
  for (ReplicaId r = 0; r < cluster.n(); ++r) {
    EXPECT_GT(cluster.replica(r).protocol().committed_height(), 3u);
  }
  EXPECT_FALSE(cluster.any_safety_violation());
  EXPECT_TRUE(cluster.committed_heights_consistent());
}

TEST_P(BothProtocols, PartitionHeals) {
  ClusterConfig cfg = small_config(GetParam());
  cfg.consensus.pacemaker.base_timeout = Duration::millis(800);
  sim::Simulator sim(cfg.seed);
  Cluster cluster(sim, cfg);
  cluster.start();
  sim.run_for(Duration::seconds(2));
  const auto before = cluster.replica(0).protocol().committed_height();

  // Isolate replica 0 and the leader from each other (minority cut, the
  // rest keep quorum).
  cluster.network().set_filter([](sim::NodeId from, sim::NodeId to) {
    return !((from == 0 && to == 1) || (from == 1 && to == 0));
  });
  sim.run_for(Duration::seconds(5));
  cluster.network().set_filter(nullptr);
  sim.run_for(Duration::seconds(8));

  for (ReplicaId r = 0; r < cluster.n(); ++r) {
    EXPECT_GT(cluster.replica(r).protocol().committed_height(), before);
  }
  EXPECT_FALSE(cluster.any_safety_violation());
  EXPECT_TRUE(cluster.committed_heights_consistent());
}

TEST_P(BothProtocols, PartialSynchronyBeforeGst) {
  // Chaotic network until GST at t=8s: big random extra delays and loss.
  // After GST the protocol must stabilize and commit (Theorem 2).
  ClusterConfig cfg = small_config(GetParam());
  cfg.net.pre_gst_extra_delay_max = Duration::seconds(2);
  cfg.net.pre_gst_drop_probability = 0.3;
  cfg.consensus.pacemaker.base_timeout = Duration::millis(800);
  sim::Simulator sim(cfg.seed);
  Cluster cluster(sim, cfg);
  cluster.network().set_gst(TimePoint::origin() + Duration::seconds(8));
  cluster.start();
  sim.run_for(Duration::seconds(30));
  for (ReplicaId r = 0; r < cluster.n(); ++r) {
    EXPECT_GT(cluster.replica(r).protocol().committed_height(), 2u)
        << "replica " << r;
  }
  EXPECT_FALSE(cluster.any_safety_violation());
  EXPECT_TRUE(cluster.committed_heights_consistent());
}

TEST_P(BothProtocols, ChaosNeverViolatesSafetyEvenWithoutLiveness) {
  // Extreme loss for the whole run: liveness is not guaranteed, safety is.
  ClusterConfig cfg = small_config(GetParam());
  cfg.net.drop_probability = 0.35;
  cfg.consensus.pacemaker.base_timeout = Duration::millis(500);
  sim::Simulator sim(cfg.seed);
  Cluster cluster(sim, cfg);
  cluster.start();
  sim.run_for(Duration::seconds(25));
  EXPECT_FALSE(cluster.any_safety_violation());
  EXPECT_TRUE(cluster.committed_heights_consistent());
}

TEST(IntegrationMarlin, ForcedUnhappyPathStillRecovers) {
  ClusterConfig cfg = small_config(ProtocolKind::kMarlin);
  auto res = run_experiment(view_change_options(cfg, /*force_unhappy=*/true));
  EXPECT_TRUE(res.view_change.resolved);
  EXPECT_TRUE(res.view_change.unhappy_path);
  EXPECT_TRUE(res.safety_ok);
}

TEST(IntegrationMarlin, HappyPathViewChangeFasterThanUnhappy) {
  ClusterConfig cfg = small_config(ProtocolKind::kMarlin);
  auto happy =
      run_experiment(view_change_options(cfg, /*force_unhappy=*/false))
          .view_change;
  auto unhappy =
      run_experiment(view_change_options(cfg, /*force_unhappy=*/true))
          .view_change;
  ASSERT_TRUE(happy.resolved);
  ASSERT_TRUE(unhappy.resolved);
  EXPECT_FALSE(happy.unhappy_path);
  EXPECT_LT(happy.mean_latency_ms + 40, unhappy.mean_latency_ms);
}

TEST(IntegrationMarlin, HappyViewChangeBeatsHotStuff) {
  // The paper's Fig. 10i ordering: Marlin happy < HotStuff ≈ Marlin unhappy.
  ClusterConfig m = small_config(ProtocolKind::kMarlin);
  ClusterConfig hs = small_config(ProtocolKind::kHotStuff);
  auto marlin_happy =
      run_experiment(view_change_options(m, false)).view_change;
  auto marlin_unhappy =
      run_experiment(view_change_options(m, true)).view_change;
  auto hotstuff = run_experiment(view_change_options(hs, false)).view_change;
  ASSERT_TRUE(marlin_happy.resolved);
  ASSERT_TRUE(marlin_unhappy.resolved);
  ASSERT_TRUE(hotstuff.resolved);
  EXPECT_LT(marlin_happy.mean_latency_ms, hotstuff.mean_latency_ms * 0.85);
  EXPECT_NEAR(marlin_unhappy.mean_latency_ms, hotstuff.mean_latency_ms,
              hotstuff.mean_latency_ms * 0.25);
}

TEST(IntegrationMarlin, ThroughputBeatsHotStuffUnderEqualLoad) {
  ClusterConfig m = small_config(ProtocolKind::kMarlin);
  ClusterConfig hs = small_config(ProtocolKind::kHotStuff);
  m.clients.window = hs.clients.window = 64;
  auto marlin = run_experiment(
      throughput_options(m, Duration::seconds(2), Duration::seconds(8)));
  auto hotstuff = run_experiment(
      throughput_options(hs, Duration::seconds(2), Duration::seconds(8)));
  EXPECT_GT(marlin.throughput_ops, hotstuff.throughput_ops * 1.04);
}

TEST(IntegrationRuntime, CheckpointsRunAtConfiguredInterval) {
  ClusterConfig cfg = small_config(ProtocolKind::kMarlin);
  cfg.consensus.checkpoint_interval = 20;  // every 20 blocks for the test
  sim::Simulator sim(cfg.seed);
  Cluster cluster(sim, cfg);
  cluster.start();
  sim.run_for(Duration::seconds(15));
  const auto& rp = cluster.replica(0);
  EXPECT_GT(rp.protocol().committed_blocks(), 20u);
  EXPECT_GE(rp.checkpoints_run(),
            rp.protocol().committed_blocks() / 20 - 1);
}

TEST(IntegrationRuntime, NoOpModeCompletes) {
  ClusterConfig cfg = small_config(ProtocolKind::kMarlin);
  cfg.clients.payload_size = 0;  // the paper's no-op requests
  auto res = run_experiment(
      throughput_options(cfg, Duration::seconds(2), Duration::seconds(6)));
  EXPECT_GT(res.throughput_ops, 50.0);
  EXPECT_TRUE(res.safety_ok);
}

TEST(IntegrationRuntime, DeterministicGivenSeed) {
  ClusterConfig cfg = small_config(ProtocolKind::kMarlin);
  auto a = run_experiment(
      throughput_options(cfg, Duration::seconds(2), Duration::seconds(5)));
  auto b = run_experiment(
      throughput_options(cfg, Duration::seconds(2), Duration::seconds(5)));
  EXPECT_DOUBLE_EQ(a.throughput_ops, b.throughput_ops);
  EXPECT_DOUBLE_EQ(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_EQ(a.total_completed, b.total_completed);
}

TEST(IntegrationRuntime, DifferentSeedsStillSafe) {
  for (std::uint64_t seed : {7ull, 99ull, 12345ull}) {
    ClusterConfig cfg = small_config(ProtocolKind::kMarlin);
    cfg.seed = seed;
    auto res = run_experiment(
        throughput_options(cfg, Duration::seconds(1), Duration::seconds(4)));
    EXPECT_TRUE(res.safety_ok) << seed;
    EXPECT_TRUE(res.consistent) << seed;
    EXPECT_GT(res.throughput_ops, 0) << seed;
  }
}

TEST(IntegrationRuntime, TrafficCountersPopulate) {
  ClusterConfig cfg = small_config(ProtocolKind::kMarlin);
  sim::Simulator sim(cfg.seed);
  Cluster cluster(sim, cfg);
  cluster.replica(1).set_count_authenticators(true);  // view-1 leader
  cluster.start();
  sim.run_for(Duration::seconds(3));
  const auto& net = cluster.network().stats(1);
  const auto proposal_idx = static_cast<std::size_t>(types::MsgKind::kProposal);
  const auto notice_idx = static_cast<std::size_t>(types::MsgKind::kQcNotice);
  EXPECT_GT(net.msgs_sent_by_kind[proposal_idx], 0u);
  EXPECT_GT(net.msgs_sent_by_kind[notice_idx], 0u);
  EXPECT_GT(net.bytes_sent_by_kind[proposal_idx], 0u);
  EXPECT_GT(cluster.replica(1).traffic().authenticators_sent, 0u);
}

}  // namespace
}  // namespace marlin::runtime
