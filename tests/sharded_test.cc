// Determinism and correctness suite for the partitioned event engine
// (simnet/sharded.h): engine-level scheduling semantics, full-cluster runs
// on shards, and the two invariance guarantees the engine makes —
// identical results across shard counts K and across worker counts.
//
// (The --shards 1 path of marlin_sim maps to the legacy single-queue
// sim::Simulator, whose byte-identical golden traces are pinned by
// trace_golden_test; the sharded schedule is a *different* deterministic
// order, so its contract is K/worker invariance, not legacy identity.)
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "runtime/cluster.h"
#include "simnet/sharded.h"

namespace marlin::sim {
namespace {

// -- engine level ------------------------------------------------------------

TEST(ShardedSimulator, RunsEventsInPerShardTimeOrder) {
  ShardedSimulator::Config cfg;
  cfg.shards = 2;
  cfg.workers = 1;
  cfg.lookahead = Duration::millis(10);
  ShardedSimulator eng(cfg);
  NodeScheduler* even = eng.node_scheduler(0);  // shard 0
  NodeScheduler* odd = eng.node_scheduler(1);   // shard 1

  std::vector<int> shard0, shard1;
  even->post(Duration::millis(25), [&] { shard0.push_back(3); });
  even->post(Duration::millis(5), [&] { shard0.push_back(1); });
  even->post(Duration::millis(15), [&] { shard0.push_back(2); });
  odd->post(Duration::millis(8), [&] { shard1.push_back(1); });
  odd->post(Duration::millis(30), [&] { shard1.push_back(2); });

  eng.run_until(TimePoint::origin() + Duration::millis(50));
  EXPECT_EQ(shard0, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(shard1, (std::vector<int>{1, 2}));
  EXPECT_EQ(eng.now(), TimePoint::origin() + Duration::millis(50));
  EXPECT_EQ(even->now(), eng.now());
  EXPECT_EQ(odd->now(), eng.now());
  EXPECT_EQ(eng.events_executed(), 5u);
  EXPECT_EQ(eng.pending_events(), 0u);
}

TEST(ShardedSimulator, EventsExactlyAtTheDeadlineRun) {
  ShardedSimulator::Config cfg;
  cfg.shards = 2;
  cfg.workers = 1;
  ShardedSimulator eng(cfg);
  bool ran = false;
  eng.node_scheduler(1)->post(Duration::millis(100), [&] { ran = true; });
  eng.run_until(TimePoint::origin() + Duration::millis(100));
  EXPECT_TRUE(ran);
}

TEST(ShardedSimulator, CrossShardPostsHonorTheLookaheadWindow) {
  ShardedSimulator::Config cfg;
  cfg.shards = 2;
  cfg.workers = 1;
  cfg.lookahead = Duration::millis(10);
  ShardedSimulator eng(cfg);
  NodeScheduler* a = eng.node_scheduler(0);
  NodeScheduler* b = eng.node_scheduler(1);

  // a's event at 5ms posts onto b at +10ms (exactly one lookahead: lands at
  // the first instant the next window can run it); b's reply hops back.
  std::vector<std::pair<int, std::int64_t>> log;
  a->post(Duration::millis(5), [&, a, b] {
    log.emplace_back(0, a->now().as_nanos());
    b->post(Duration::millis(10), [&, a, b] {
      log.emplace_back(1, b->now().as_nanos());
      a->post(Duration::millis(10), [&, a] {
        log.emplace_back(0, a->now().as_nanos());
      });
    });
  });
  eng.run_until(TimePoint::origin() + Duration::millis(40));
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], std::make_pair(0, Duration::millis(5).as_nanos()));
  EXPECT_EQ(log[1], std::make_pair(1, Duration::millis(15).as_nanos()));
  EXPECT_EQ(log[2], std::make_pair(0, Duration::millis(25).as_nanos()));
}

TEST(ShardedSimulator, TimersCancelAndFire) {
  ShardedSimulator::Config cfg;
  cfg.shards = 2;
  cfg.workers = 1;
  ShardedSimulator eng(cfg);
  NodeScheduler* node = eng.node_scheduler(3);  // shard 1

  int fired = 0;
  TimerHandle cancelled = node->schedule(Duration::millis(20), [&] { ++fired; });
  TimerHandle kept = node->schedule(Duration::millis(30), [&] { fired += 10; });
  EXPECT_TRUE(cancelled.active());
  cancelled.cancel();
  EXPECT_FALSE(cancelled.active());
  EXPECT_TRUE(kept.active());

  eng.run_for(Duration::millis(100));
  EXPECT_EQ(fired, 10);
  EXPECT_FALSE(kept.active());
  // Slot recycling: a new timer may reuse the cancelled slot; the stale
  // handle must stay dead.
  TimerHandle reused = node->schedule(Duration::millis(10), [&] { ++fired; });
  EXPECT_FALSE(cancelled.active());
  EXPECT_TRUE(reused.active());
  eng.run_for(Duration::millis(20));
  EXPECT_EQ(fired, 11);
}

TEST(ShardedSimulator, WorkerPoolExecutesAllShards) {
  ShardedSimulator::Config cfg;
  cfg.shards = 4;
  cfg.workers = 4;  // real threads even on a 1-core host
  ShardedSimulator eng(cfg);
  std::vector<int> counts(4, 0);
  for (NodeId node = 0; node < 16; ++node) {
    NodeScheduler* s = eng.node_scheduler(node);
    for (int i = 0; i < 8; ++i) {
      s->post(Duration::millis(10 * (i + 1)),
              [&counts, shard = s->shard()] { ++counts[shard]; });
    }
  }
  eng.run_for(Duration::millis(200));
  for (int c : counts) EXPECT_EQ(c, 32);  // 4 nodes/shard x 8 events
  EXPECT_EQ(eng.events_executed(), 128u);
}

// -- cluster level -----------------------------------------------------------

runtime::ClusterConfig cluster_config(std::uint32_t f) {
  runtime::ClusterConfig cfg;
  cfg.f = f;
  cfg.clients.count = 4;
  cfg.clients.window = 8;
  cfg.consensus.max_batch_ops = 500;
  cfg.seed = 77;
  return cfg;
}

/// Everything observable about a run, projected to be comparable across
/// shard/worker counts: trace events minus the per-sink seq (sink
/// partitioning differs across K), plus final protocol state.
struct RunSignature {
  using Projected =
      std::tuple<std::int64_t, std::uint32_t, int, int, int, ViewNumber,
                 Height, std::uint64_t, std::uint64_t, std::uint64_t,
                 std::uint64_t>;
  std::vector<Projected> trace;
  std::vector<std::pair<Height, std::uint64_t>> replicas;  // height, hash64
  std::uint64_t completed = 0;
  bool safety_ok = false;
  bool consistent = false;
};

RunSignature run_sharded(std::uint32_t shards, std::uint32_t workers,
                         runtime::ClusterConfig cfg, Duration horizon) {
  ShardedSimulator::Config ecfg;
  ecfg.seed = cfg.seed;
  ecfg.shards = shards;
  ecfg.workers = workers;
  ecfg.lookahead = cfg.net.one_way_delay;
  ShardedSimulator eng(ecfg);
  eng.enable_tracing(1u << 16);
  runtime::Cluster cluster(eng, cfg);
  cluster.set_measurement_window(TimePoint::origin(),
                                 TimePoint::origin() + horizon);
  cluster.start();
  eng.run_for(horizon);

  RunSignature sig;
  for (const obs::TraceEvent& e : eng.merged_trace()) {
    sig.trace.emplace_back(e.at.as_nanos(), e.node, static_cast<int>(e.type),
                           e.phase, e.kind, e.view, e.height, e.block, e.a,
                           e.b, e.c);
  }
  for (ReplicaId r = 0; r < cluster.n(); ++r) {
    const auto& p = cluster.replica(r).protocol();
    std::uint64_t hash64 = 0;
    for (int i = 0; i < 8; ++i) {
      hash64 |= static_cast<std::uint64_t>(p.committed_hash().data[i])
                << (8 * i);
    }
    sig.replicas.emplace_back(p.committed_height(), hash64);
  }
  sig.completed = cluster.total_completed();
  sig.safety_ok = !cluster.any_safety_violation();
  sig.consistent = cluster.committed_heights_consistent();
  return sig;
}

TEST(ShardedCluster, CommitsOnFourShards) {
  RunSignature sig =
      run_sharded(4, 1, cluster_config(1), Duration::seconds(5));
  EXPECT_TRUE(sig.safety_ok);
  EXPECT_TRUE(sig.consistent);
  EXPECT_GT(sig.completed, 100u);
  for (const auto& [height, hash] : sig.replicas) EXPECT_GT(height, 0u);
}

TEST(ShardedCluster, ResultIsInvariantAcrossShardCounts) {
  const runtime::ClusterConfig cfg = cluster_config(1);
  const Duration horizon = Duration::seconds(4);
  RunSignature k2 = run_sharded(2, 1, cfg, horizon);
  RunSignature k4 = run_sharded(4, 1, cfg, horizon);
  RunSignature k8 = run_sharded(8, 1, cfg, horizon);
  ASSERT_FALSE(k2.trace.empty());
  EXPECT_EQ(k2.trace, k4.trace);
  EXPECT_EQ(k2.trace, k8.trace);
  EXPECT_EQ(k2.replicas, k4.replicas);
  EXPECT_EQ(k2.replicas, k8.replicas);
  EXPECT_EQ(k2.completed, k4.completed);
  EXPECT_EQ(k2.completed, k8.completed);
  EXPECT_TRUE(k4.safety_ok);
}

TEST(ShardedCluster, ResultIsInvariantAcrossWorkerCounts) {
  const runtime::ClusterConfig cfg = cluster_config(1);
  const Duration horizon = Duration::seconds(4);
  RunSignature w1 = run_sharded(4, 1, cfg, horizon);
  RunSignature w2 = run_sharded(4, 2, cfg, horizon);
  RunSignature w4 = run_sharded(4, 4, cfg, horizon);
  ASSERT_FALSE(w1.trace.empty());
  EXPECT_EQ(w1.trace, w2.trace);
  EXPECT_EQ(w1.trace, w4.trace);
  EXPECT_EQ(w1.replicas, w2.replicas);
  EXPECT_EQ(w1.replicas, w4.replicas);
  EXPECT_EQ(w1.completed, w2.completed);
  EXPECT_EQ(w1.completed, w4.completed);
}

TEST(ShardedCluster, FaultPlanRunsOnControlLaneInvariantly) {
  runtime::ClusterConfig cfg = cluster_config(1);
  cfg.consensus.pacemaker.base_timeout = Duration::millis(800);
  cfg.faults.actions.push_back(
      faults::FaultAction::crash_leader(Duration::millis(900)));
  cfg.faults.actions.push_back(
      faults::FaultAction::drop_burst(Duration::seconds(2), 0.1,
                                      Duration::millis(500)));
  const Duration horizon = Duration::seconds(6);
  RunSignature a = run_sharded(2, 1, cfg, horizon);
  RunSignature b = run_sharded(4, 2, cfg, horizon);
  EXPECT_TRUE(a.safety_ok);
  EXPECT_TRUE(a.consistent);
  EXPECT_GT(a.completed, 0u);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.replicas, b.replicas);
  EXPECT_EQ(a.completed, b.completed);
}

TEST(ShardedCluster, RepeatedRunsAreIdentical) {
  const runtime::ClusterConfig cfg = cluster_config(1);
  RunSignature a = run_sharded(4, 2, cfg, Duration::seconds(3));
  RunSignature b = run_sharded(4, 2, cfg, Duration::seconds(3));
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.replicas, b.replicas);
  EXPECT_EQ(a.completed, b.completed);
}

}  // namespace
}  // namespace marlin::sim
