// Unit tests for the from-scratch crypto stack: SHA-256 / HMAC against
// published vectors, 256-bit arithmetic, secp256k1 group law, ECDSA, the
// signer suites, and quorum-certificate aggregation.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/aggregate.h"
#include "crypto/bigint.h"
#include "crypto/ecdsa.h"
#include "crypto/secp256k1.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"

namespace marlin::crypto {
namespace {

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4 / NIST vectors)
// ---------------------------------------------------------------------------

struct ShaVector {
  const char* message;
  const char* digest;
};

class Sha256KnownAnswer : public ::testing::TestWithParam<ShaVector> {};

TEST_P(Sha256KnownAnswer, Matches) {
  const auto& v = GetParam();
  EXPECT_EQ(Sha256::digest(to_bytes(v.message)).to_hex(), v.digest);
}

INSTANTIATE_TEST_SUITE_P(
    Nist, Sha256KnownAnswer,
    ::testing::Values(
        ShaVector{"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
        ShaVector{"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
        ShaVector{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                  "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
        ShaVector{"The quick brown fox jumps over the lazy dog",
                  "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"}));

TEST(Sha256, MillionAs) {
  // NIST long-message vector: 1,000,000 'a' characters.
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(h.finish().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  // Property: arbitrary chunking never changes the digest.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const Bytes data = rng.next_bytes(1 + rng.next_below(500));
    Sha256 inc;
    std::size_t pos = 0;
    while (pos < data.size()) {
      const std::size_t take =
          std::min<std::size_t>(1 + rng.next_below(64), data.size() - pos);
      inc.update(BytesView(data.data() + pos, take));
      pos += take;
    }
    EXPECT_EQ(inc.finish(), Sha256::digest(data));
  }
}

TEST(Sha256, BoundaryLengths) {
  // Padding boundaries: 55, 56, 63, 64, 65 bytes.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
    const Bytes data(len, 'x');
    Sha256 a;
    a.update(data);
    EXPECT_EQ(a.finish(), Sha256::digest(data)) << len;
  }
}

TEST(Hash256, ShortHexAndZero) {
  Hash256 z;
  EXPECT_TRUE(z.is_zero());
  const Hash256 h = Sha256::digest(to_bytes("x"));
  EXPECT_FALSE(h.is_zero());
  EXPECT_EQ(h.short_hex(), h.to_hex().substr(0, 8));
}

// ---------------------------------------------------------------------------
// HMAC-SHA256 (RFC 4231)
// ---------------------------------------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hmac_sha256(key, to_bytes("Hi There")).to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(hmac_sha256(to_bytes("Jefe"),
                        to_bytes("what do ya want for nothing?"))
                .to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  EXPECT_EQ(hmac_sha256(key, to_bytes("Test Using Larger Than Block-Size Key "
                                      "- Hash Key First"))
                .to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// ---------------------------------------------------------------------------
// 256-bit arithmetic
// ---------------------------------------------------------------------------

TEST(U256, HexRoundTrip) {
  const U256 v = U256::from_hex("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
  EXPECT_EQ(v.to_hex(),
            "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
}

TEST(U256, ByteRoundTrip) {
  const U256 v = U256::from_u64(0xdeadbeefcafebabeULL);
  EXPECT_EQ(U256::from_be_bytes(v.to_be_bytes()), v);
}

TEST(U256, Comparison) {
  EXPECT_LT(U256::from_u64(1), U256::from_u64(2));
  EXPECT_LT(U256::from_u64(~0ull), U256::from_hex("010000000000000000"));
}

TEST(U256, BitLength) {
  EXPECT_EQ(U256::zero().bit_length(), 0);
  EXPECT_EQ(U256::one().bit_length(), 1);
  EXPECT_EQ(U256::from_u64(0x80).bit_length(), 8);
  EXPECT_EQ(U256::from_hex("0100000000000000000000000000000000").bit_length(),
            129);
}

TEST(U256, AddSubInverse) {
  const U256 a = U256::from_hex("ffffffffffffffffffffffffffffffff");
  const U256 b = U256::from_u64(12345);
  U256 sum, back;
  EXPECT_EQ(add_with_carry(a, b, sum), 0u);
  EXPECT_EQ(sub_with_borrow(sum, b, back), 0u);
  EXPECT_EQ(back, a);
}

TEST(U256, CarryPropagates) {
  U256 max;
  for (auto& l : max.limb) l = ~0ull;
  U256 out;
  EXPECT_EQ(add_with_carry(max, U256::one(), out), 1u);
  EXPECT_TRUE(out.is_zero());
}

TEST(U256, MulFullKnown) {
  // (2^64 - 1)^2 = 2^128 - 2^65 + 1.
  const U256 a = U256::from_u64(~0ull);
  const U512 p = mul_full(a, a);
  EXPECT_EQ(p.limb[0], 1ull);
  EXPECT_EQ(p.limb[1], ~0ull - 1);  // 0xfffffffffffffffe
  EXPECT_EQ(p.limb[2], 0ull);
  EXPECT_TRUE(p.high_is_zero());
}

TEST(ModArith, FieldBasics) {
  const ModArith& fp = Secp256k1::instance().field();
  const U256 p_minus_1 = fp.sub(U256::zero(), U256::one());
  EXPECT_EQ(fp.add(p_minus_1, U256::one()), U256::zero());
  EXPECT_EQ(fp.mul(p_minus_1, p_minus_1), U256::one());  // (-1)^2 = 1
}

TEST(ModArith, InverseRoundTrip) {
  const ModArith& fn = Secp256k1::instance().scalar();
  Rng rng(4242);
  for (int i = 0; i < 10; ++i) {
    const U256 x = fn.reduce(U256::from_be_bytes(rng.next_bytes(32)));
    if (x.is_zero()) continue;
    EXPECT_EQ(fn.mul(x, fn.inv(x)), U256::one());
  }
}

TEST(ModArith, PowMatchesRepeatedMul) {
  const ModArith& fp = Secp256k1::instance().field();
  const U256 base = U256::from_u64(7);
  U256 acc = U256::one();
  for (int i = 0; i < 13; ++i) acc = fp.mul(acc, base);
  EXPECT_EQ(fp.pow(base, U256::from_u64(13)), acc);
}

TEST(ModArith, Reduce512) {
  const ModArith& fp = Secp256k1::instance().field();
  // p * p reduces to 0.
  const U512 pp = mul_full(Secp256k1::instance().p(), Secp256k1::instance().p());
  EXPECT_TRUE(fp.reduce(pp).is_zero());
}

// ---------------------------------------------------------------------------
// secp256k1 group law
// ---------------------------------------------------------------------------

TEST(Secp256k1, GeneratorOnCurve) {
  const auto& c = Secp256k1::instance();
  AffinePoint g{c.gx(), c.gy(), false};
  EXPECT_TRUE(g.on_curve());
}

TEST(Secp256k1, KnownMultiples) {
  const auto& c = Secp256k1::instance();
  AffinePoint g{c.gx(), c.gy(), false};
  const AffinePoint two_g = scalar_mult(U256::from_u64(2), g).to_affine();
  EXPECT_EQ(two_g.x.to_hex(),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_EQ(two_g.y.to_hex(),
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");
  const AffinePoint three_g = scalar_mult(U256::from_u64(3), g).to_affine();
  EXPECT_EQ(three_g.x.to_hex(),
            "f9308a019258c31049344f85f89d5229b531c845836f99b08601f113bce036f9");
}

TEST(Secp256k1, OrderAnnihilates) {
  const auto& c = Secp256k1::instance();
  AffinePoint g{c.gx(), c.gy(), false};
  EXPECT_TRUE(scalar_mult(c.n(), g).is_infinity());
}

TEST(Secp256k1, AddCommutes) {
  const auto& c = Secp256k1::instance();
  AffinePoint g{c.gx(), c.gy(), false};
  const JacobianPoint p2 = scalar_mult(U256::from_u64(5), g);
  const JacobianPoint p3 = scalar_mult(U256::from_u64(9), g);
  EXPECT_EQ(point_add(p2, p3).to_affine(), point_add(p3, p2).to_affine());
}

TEST(Secp256k1, DoubleMatchesAdd) {
  const auto& c = Secp256k1::instance();
  AffinePoint g{c.gx(), c.gy(), false};
  const JacobianPoint jg = JacobianPoint::from_affine(g);
  EXPECT_EQ(point_double(jg).to_affine(), point_add(jg, jg).to_affine());
}

TEST(Secp256k1, ScalarDistributes) {
  // (a + b) * G == a*G + b*G for random a, b.
  const auto& c = Secp256k1::instance();
  AffinePoint g{c.gx(), c.gy(), false};
  Rng rng(777);
  for (int i = 0; i < 5; ++i) {
    const U256 a = c.scalar().reduce(U256::from_be_bytes(rng.next_bytes(32)));
    const U256 b = c.scalar().reduce(U256::from_be_bytes(rng.next_bytes(32)));
    const U256 ab = c.scalar().add(a, b);
    const AffinePoint lhs = scalar_mult(ab, g).to_affine();
    const AffinePoint rhs =
        point_add(scalar_mult(a, g), scalar_mult(b, g)).to_affine();
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(Secp256k1, DoubleScalarMultMatchesNaive) {
  const auto& c = Secp256k1::instance();
  AffinePoint g{c.gx(), c.gy(), false};
  const AffinePoint q = scalar_mult(U256::from_u64(123456789), g).to_affine();
  const U256 u1 = U256::from_u64(987654);
  const U256 u2 = U256::from_u64(13579);
  const AffinePoint fast = double_scalar_mult(u1, u2, q).to_affine();
  const AffinePoint slow =
      point_add(scalar_mult(u1, g), scalar_mult(u2, q)).to_affine();
  EXPECT_EQ(fast, slow);
}

TEST(Secp256k1, PointEncodingRoundTrip) {
  const auto& c = Secp256k1::instance();
  AffinePoint g{c.gx(), c.gy(), false};
  const AffinePoint p = scalar_mult(U256::from_u64(42), g).to_affine();
  auto decoded = AffinePoint::decode(p.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, p);
}

TEST(Secp256k1, DecodeRejectsOffCurve) {
  const auto& c = Secp256k1::instance();
  AffinePoint g{c.gx(), c.gy(), false};
  Bytes enc = g.encode();
  enc[40] ^= 0x01;  // corrupt a coordinate byte
  EXPECT_FALSE(AffinePoint::decode(enc).has_value());
}

TEST(Secp256k1, InfinityEncoding) {
  const AffinePoint inf = AffinePoint::at_infinity();
  auto decoded = AffinePoint::decode(inf.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->infinity);
}

// ---------------------------------------------------------------------------
// ECDSA
// ---------------------------------------------------------------------------

TEST(Ecdsa, SignVerifyRoundTrip) {
  const auto key = EcdsaPrivateKey::from_seed(to_bytes("k1"));
  const auto pub = key.public_key();
  const Bytes msg = to_bytes("attack at dawn");
  EXPECT_TRUE(pub.verify(msg, key.sign(msg)));
}

TEST(Ecdsa, RejectsTamperedMessage) {
  const auto key = EcdsaPrivateKey::from_seed(to_bytes("k2"));
  const auto pub = key.public_key();
  const auto sig = key.sign(to_bytes("original"));
  EXPECT_FALSE(pub.verify(to_bytes("0riginal"), sig));
}

TEST(Ecdsa, RejectsTamperedSignature) {
  const auto key = EcdsaPrivateKey::from_seed(to_bytes("k3"));
  const auto pub = key.public_key();
  const Bytes msg = to_bytes("msg");
  auto sig = key.sign(msg);
  sig.s = Secp256k1::instance().scalar().add(sig.s, U256::one());
  EXPECT_FALSE(pub.verify(msg, sig));
}

TEST(Ecdsa, RejectsWrongKey) {
  const auto k1 = EcdsaPrivateKey::from_seed(to_bytes("a"));
  const auto k2 = EcdsaPrivateKey::from_seed(to_bytes("b"));
  const Bytes msg = to_bytes("msg");
  EXPECT_FALSE(k2.public_key().verify(msg, k1.sign(msg)));
}

TEST(Ecdsa, DeterministicSignatures) {
  const auto key = EcdsaPrivateKey::from_seed(to_bytes("det"));
  const Bytes msg = to_bytes("same message");
  EXPECT_EQ(key.sign(msg), key.sign(msg));
}

TEST(Ecdsa, RejectsZeroComponents) {
  const auto key = EcdsaPrivateKey::from_seed(to_bytes("z"));
  const auto pub = key.public_key();
  const Bytes msg = to_bytes("m");
  auto sig = key.sign(msg);
  auto zero_r = sig;
  zero_r.r = U256::zero();
  EXPECT_FALSE(pub.verify(msg, zero_r));
  auto zero_s = sig;
  zero_s.s = U256::zero();
  EXPECT_FALSE(pub.verify(msg, zero_s));
}

TEST(Ecdsa, SignatureEncoding) {
  const auto key = EcdsaPrivateKey::from_seed(to_bytes("enc"));
  const auto sig = key.sign(to_bytes("m"));
  const Bytes enc = sig.encode();
  EXPECT_EQ(enc.size(), 64u);
  auto dec = EcdsaSignature::decode(enc);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, sig);
  EXPECT_FALSE(EcdsaSignature::decode(BytesView(enc.data(), 63)).has_value());
}

TEST(Ecdsa, PublicKeyEncoding) {
  const auto key = EcdsaPrivateKey::from_seed(to_bytes("pk"));
  const auto pub = key.public_key();
  auto dec = EcdsaPublicKey::decode(pub.encode());
  ASSERT_TRUE(dec.has_value());
  EXPECT_TRUE(dec->verify(to_bytes("m"), key.sign(to_bytes("m"))));
}

// ---------------------------------------------------------------------------
// Signature suites
// ---------------------------------------------------------------------------

class SuiteTest : public ::testing::TestWithParam<bool> {
 protected:
  std::unique_ptr<SignatureSuite> make(std::uint32_t n) {
    return GetParam() ? make_ecdsa_suite(n, to_bytes("seed"))
                      : make_fast_suite(n, to_bytes("seed"));
  }
};

TEST_P(SuiteTest, SignVerify) {
  auto suite = make(4);
  const Bytes msg = to_bytes("vote");
  for (ReplicaId r = 0; r < 4; ++r) {
    const Bytes sig = suite->signer(r)->sign(msg);
    EXPECT_EQ(sig.size(), kSignatureSize);
    EXPECT_TRUE(suite->verifier().verify(r, msg, sig));
  }
}

TEST_P(SuiteTest, CrossReplicaRejected) {
  auto suite = make(4);
  const Bytes msg = to_bytes("vote");
  const Bytes sig = suite->signer(0)->sign(msg);
  EXPECT_FALSE(suite->verifier().verify(1, msg, sig));
}

TEST_P(SuiteTest, TamperedMessageRejected) {
  auto suite = make(4);
  const Bytes sig = suite->signer(2)->sign(to_bytes("vote"));
  EXPECT_FALSE(suite->verifier().verify(2, to_bytes("votf"), sig));
}

TEST_P(SuiteTest, UnknownSignerRejected) {
  auto suite = make(4);
  const Bytes sig = suite->signer(0)->sign(to_bytes("m"));
  EXPECT_FALSE(suite->verifier().verify(17, to_bytes("m"), sig));
}

INSTANTIATE_TEST_SUITE_P(EcdsaAndFast, SuiteTest,
                         ::testing::Values(true, false),
                         [](const auto& info) {
                           return info.param ? "Ecdsa" : "Fast";
                         });

// ---------------------------------------------------------------------------
// SigGroup aggregation
// ---------------------------------------------------------------------------

class SigGroupTest : public ::testing::Test {
 protected:
  void SetUp() override {
    suite_ = make_fast_suite(7, to_bytes("agg"));
    msg_ = to_bytes("the digest");
  }

  PartialSig part(ReplicaId r) {
    return PartialSig{r, suite_->signer(r)->sign(msg_)};
  }

  std::unique_ptr<SignatureSuite> suite_;
  Bytes msg_;
};

TEST_F(SigGroupTest, CombineAndVerify) {
  auto group = SigGroup::combine({part(0), part(2), part(4), part(6), part(1)}, 5);
  ASSERT_TRUE(group.has_value());
  EXPECT_EQ(group->signer_count(), 5u);
  EXPECT_TRUE(group->verify(suite_->verifier(), msg_, 5));
}

TEST_F(SigGroupTest, BelowThresholdFails) {
  EXPECT_FALSE(SigGroup::combine({part(0), part(1)}, 3).has_value());
}

TEST_F(SigGroupTest, DuplicatesDeduped) {
  auto group = SigGroup::combine({part(0), part(0), part(1), part(2)}, 3);
  ASSERT_TRUE(group.has_value());
  EXPECT_EQ(group->signer_count(), 3u);
}

TEST_F(SigGroupTest, DuplicatesDontFakeQuorum) {
  EXPECT_FALSE(
      SigGroup::combine({part(0), part(0), part(0), part(1)}, 3).has_value());
}

TEST_F(SigGroupTest, VerifyRejectsBadSignature) {
  auto group = SigGroup::combine({part(0), part(1), part(2)}, 3);
  ASSERT_TRUE(group.has_value());
  group->parts[1].sig[0] ^= 0x01;
  EXPECT_FALSE(group->verify(suite_->verifier(), msg_, 3));
}

TEST_F(SigGroupTest, VerifyRejectsWrongMessage) {
  auto group = SigGroup::combine({part(0), part(1), part(2)}, 3);
  ASSERT_TRUE(group.has_value());
  EXPECT_FALSE(group->verify(suite_->verifier(), to_bytes("other"), 3));
}

TEST_F(SigGroupTest, VerifyRejectsOutOfRangeSigner) {
  auto group = SigGroup::combine({part(0), part(1), part(2)}, 3);
  ASSERT_TRUE(group.has_value());
  group->parts[2].signer = 99;
  EXPECT_FALSE(group->verify(suite_->verifier(), msg_, 3));
}

TEST_F(SigGroupTest, WireRoundTrip) {
  auto group = SigGroup::combine({part(0), part(1), part(2)}, 3);
  ASSERT_TRUE(group.has_value());
  Writer w;
  group->encode(w);
  auto back = decode_from_bytes<SigGroup>(w.buffer());
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), *group);
}

TEST(VerifyCostModel, Counts) {
  EXPECT_EQ(sig_group_cost(5).signature_checks, 5u);
  EXPECT_EQ(sig_group_cost(5).pairings, 0u);
  EXPECT_EQ(sim_threshold_cost().pairings, 2u);
}

}  // namespace
}  // namespace marlin::crypto

namespace marlin::crypto {
namespace {

// ---------------------------------------------------------------------------
// Arithmetic and group-law edge cases
// ---------------------------------------------------------------------------

TEST(U256Edge, SubWithBorrowWraps) {
  U256 out;
  EXPECT_EQ(sub_with_borrow(U256::zero(), U256::one(), out), 1u);
  for (auto limb : out.limb) EXPECT_EQ(limb, ~0ull);
}

TEST(U256Edge, MaxValueRoundTrips) {
  U256 max;
  for (auto& l : max.limb) l = ~0ull;
  EXPECT_EQ(U256::from_be_bytes(max.to_be_bytes()), max);
  EXPECT_EQ(max.bit_length(), 256);
}

TEST(ModArithEdge, InverseOfOneIsOne) {
  const ModArith& fp = Secp256k1::instance().field();
  EXPECT_EQ(fp.inv(U256::one()), U256::one());
}

TEST(ModArithEdge, PowZeroExponentIsOne) {
  const ModArith& fp = Secp256k1::instance().field();
  EXPECT_EQ(fp.pow(U256::from_u64(12345), U256::zero()), U256::one());
}

TEST(ModArithEdge, ReduceValueJustBelowModulus) {
  const auto& c = Secp256k1::instance();
  U256 below;
  sub_with_borrow(c.p(), U256::one(), below);
  EXPECT_EQ(c.field().reduce(below), below);
  EXPECT_TRUE(c.field().reduce(c.p()).is_zero());
}

TEST(PointEdge, InfinityIsIdentity) {
  const auto& c = Secp256k1::instance();
  AffinePoint g{c.gx(), c.gy(), false};
  const JacobianPoint jg = JacobianPoint::from_affine(g);
  const JacobianPoint inf = JacobianPoint::at_infinity();
  EXPECT_EQ(point_add(jg, inf).to_affine(), g);
  EXPECT_EQ(point_add(inf, jg).to_affine(), g);
  EXPECT_TRUE(point_double(inf).is_infinity());
}

TEST(PointEdge, AddingInverseGivesInfinity) {
  const auto& c = Secp256k1::instance();
  AffinePoint g{c.gx(), c.gy(), false};
  AffinePoint neg_g = g;
  neg_g.y = c.field().sub(U256::zero(), g.y);
  EXPECT_TRUE(neg_g.on_curve());
  EXPECT_TRUE(point_add(JacobianPoint::from_affine(g),
                        JacobianPoint::from_affine(neg_g))
                  .is_infinity());
}

TEST(PointEdge, ScalarZeroGivesInfinity) {
  const auto& c = Secp256k1::instance();
  AffinePoint g{c.gx(), c.gy(), false};
  EXPECT_TRUE(scalar_mult(U256::zero(), g).is_infinity());
}

TEST(PointEdge, NMinusOneTimesGIsNegG) {
  const auto& c = Secp256k1::instance();
  AffinePoint g{c.gx(), c.gy(), false};
  U256 n_minus_1;
  sub_with_borrow(c.n(), U256::one(), n_minus_1);
  const AffinePoint r = scalar_mult(n_minus_1, g).to_affine();
  EXPECT_EQ(r.x, g.x);
  EXPECT_EQ(r.y, c.field().sub(U256::zero(), g.y));
}

TEST(EcdsaEdge, DomainsAreIndependent) {
  // Same seed, different domains (suite seeding) → different keys.
  auto fast = make_fast_suite(2, to_bytes("same-seed"));
  auto ecdsa = make_ecdsa_suite(2, to_bytes("same-seed"));
  const Bytes msg = to_bytes("m");
  const Bytes fast_sig = fast->signer(0)->sign(msg);
  EXPECT_FALSE(ecdsa->verifier().verify(0, msg, fast_sig));
}

TEST(EcdsaEdge, DistinctMessagesDistinctSignatures) {
  const auto key = EcdsaPrivateKey::from_seed(to_bytes("dm"));
  EXPECT_NE(key.sign(to_bytes("a")).encode(), key.sign(to_bytes("b")).encode());
}

TEST(Sha256Edge, DigestsDifferOnSingleBitFlip) {
  Bytes a(100, 0x42);
  Bytes b = a;
  b[63] ^= 0x80;  // flip a bit at the block boundary
  EXPECT_NE(Sha256::digest(a), Sha256::digest(b));
}

}  // namespace
}  // namespace marlin::crypto
