// Tests for the real-socket runtime (src/realnet): the timer wheel, the
// epoll event loop, the TCP transport pair (framing, reconnect), and full
// localhost clusters — commit liveness, clean shutdown draining in-flight
// sends, and replica kill+relaunch reloading durable state over TCP.
//
// These tests run real threads and real sockets on 127.0.0.1, so they use
// generous deadlines and poll for conditions instead of pinning exact
// timings (wall-clock here is not the simulator's virtual clock).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "realnet/clock.h"
#include "realnet/event_loop.h"
#include "realnet/http_client.h"
#include "realnet/real_cluster.h"
#include "realnet/tcp_transport.h"
#include "realnet/timer_wheel.h"

namespace marlin::realnet {
namespace {

// Polls `cond` (on this thread) until true or `patience` elapses.
bool eventually(Duration patience, const std::function<bool()>& cond) {
  const TimePoint deadline = mono_now() + patience;
  while (mono_now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

// ---------------------------------------------------------------------------
// TimerWheel
// ---------------------------------------------------------------------------

TEST(TimerWheel, FiresInDeadlineOrder) {
  TimerWheel wheel;
  std::vector<int> order;
  const TimePoint t0 = TimePoint::origin();
  wheel.schedule_at(t0 + Duration::millis(30), [&] { order.push_back(3); });
  wheel.schedule_at(t0 + Duration::millis(10), [&] { order.push_back(1); });
  wheel.schedule_at(t0 + Duration::millis(20), [&] { order.push_back(2); });
  EXPECT_EQ(wheel.pending(), 3u);
  wheel.advance(t0 + Duration::millis(40));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, DoesNotFireEarly) {
  TimerWheel wheel;
  bool fired = false;
  wheel.schedule_at(TimePoint::from_nanos(50'000'000), [&] { fired = true; });
  wheel.advance(TimePoint::from_nanos(49'000'000));
  EXPECT_FALSE(fired);
  wheel.advance(TimePoint::from_nanos(50'000'000));
  EXPECT_TRUE(fired);
}

TEST(TimerWheel, CancelledTimerDoesNotFire) {
  TimerWheel wheel;
  bool fired = false;
  TimerHandle h = wheel.schedule_at(TimePoint::from_nanos(10'000'000),
                                    [&] { fired = true; });
  EXPECT_TRUE(h.active());
  h.cancel();
  EXPECT_FALSE(h.active());
  wheel.advance(TimePoint::from_nanos(20'000'000));
  EXPECT_FALSE(fired);
  // Cancelling again (stale handle) is a no-op.
  h.cancel();
}

TEST(TimerWheel, StaleHandleCannotCancelReusedSlot) {
  TimerWheel wheel;
  int fired = 0;
  TimerHandle h1 = wheel.schedule_at(TimePoint::from_nanos(1'000'000),
                                     [&] { ++fired; });
  wheel.advance(TimePoint::from_nanos(2'000'000));
  EXPECT_EQ(fired, 1);
  // The slab slot is free now; a new timer may reuse it. The old handle's
  // generation is stale and must not cancel the new timer.
  TimerHandle h2 = wheel.schedule_at(TimePoint::from_nanos(3'000'000),
                                     [&] { ++fired; });
  h1.cancel();
  EXPECT_TRUE(h2.active());
  wheel.advance(TimePoint::from_nanos(4'000'000));
  EXPECT_EQ(fired, 2);
}

TEST(TimerWheel, FarDeadlineSurvivesWheelRotations) {
  TimerWheel wheel;
  // > kBuckets ticks out: hashes into a bucket that is visited several
  // times before the deadline; must fire only at the deadline.
  bool fired = false;
  const TimePoint far = TimePoint::from_nanos(3'500'000'000);  // 3.5 s
  wheel.schedule_at(far, [&] { fired = true; });
  for (std::int64_t ms = 0; ms < 3500; ms += 100) {
    wheel.advance(TimePoint::from_nanos(ms * 1'000'000));
    ASSERT_FALSE(fired) << "fired early at " << ms << " ms";
  }
  wheel.advance(far);
  EXPECT_TRUE(fired);
}

TEST(TimerWheel, NextTimeoutTracksEarliestPending) {
  TimerWheel wheel;
  const TimePoint t0 = TimePoint::origin();
  EXPECT_EQ(wheel.next_timeout_ns(t0), -1);
  wheel.schedule_at(t0 + Duration::millis(50), [] {});
  TimerHandle near = wheel.schedule_at(t0 + Duration::millis(10), [] {});
  EXPECT_EQ(wheel.next_timeout_ns(t0), Duration::millis(10).as_nanos());
  near.cancel();
  EXPECT_EQ(wheel.next_timeout_ns(t0), Duration::millis(50).as_nanos());
}

// ---------------------------------------------------------------------------
// EventLoop
// ---------------------------------------------------------------------------

TEST(EventLoop, RunsPostedTasksOnLoopThread) {
  EventLoop loop;
  std::atomic<bool> ran{false};
  std::atomic<bool> on_loop{false};
  std::thread t([&] { loop.run(); });
  loop.post([&] {
    on_loop = loop.on_loop_thread();
    ran = true;
    loop.stop();
  });
  t.join();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(on_loop);
}

TEST(EventLoop, TimersFireAtRealTime) {
  EventLoop loop;
  std::atomic<std::int64_t> fired_at{0};
  const TimePoint start = mono_now();
  std::thread t([&] { loop.run(); });
  loop.post([&] {
    loop.schedule(Duration::millis(30), [&] {
      fired_at = (mono_now() - start).as_nanos();
      loop.stop();
    });
  });
  t.join();
  // Fired, and not before the deadline (wheel resolution is 1 ms).
  EXPECT_GE(fired_at.load(), Duration::millis(29).as_nanos());
}

// ---------------------------------------------------------------------------
// TcpTransport
// ---------------------------------------------------------------------------

struct TransportNode {
  EventLoop loop;
  std::unique_ptr<TcpTransport> transport;
  std::thread thread;
  std::uint16_t port = 0;

  explicit TransportNode(std::uint32_t id, TransportConfig config = {}) {
    transport = std::make_unique<TcpTransport>(loop, id, config);
    auto p = transport->listen(0);
    EXPECT_TRUE(p.is_ok());
    port = p.value();
  }

  void run() {
    thread = std::thread([this] { loop.run(); });
  }

  void stop() {
    loop.post([this] {
      transport->shutdown();
      loop.stop();
    });
    if (thread.joinable()) thread.join();
  }
};

TEST(TcpTransport, DeliversFramesWithSenderId) {
  TransportNode a(0), b(1);
  std::mutex mu;
  std::vector<std::pair<std::uint32_t, Bytes>> got;
  b.transport->set_handler([&](std::uint32_t from, Payload p) {
    std::lock_guard<std::mutex> lock(mu);
    got.emplace_back(from, Bytes(p.bytes()));
  });
  a.transport->set_peer(1, Endpoint{"127.0.0.1", b.port});
  a.run();
  b.run();

  Bytes msg{3, 0xde, 0xad};  // a "proposal" frame
  a.loop.post([&] { a.transport->send(1, Payload(msg)); });

  ASSERT_TRUE(eventually(Duration::seconds(5), [&] {
    std::lock_guard<std::mutex> lock(mu);
    return got.size() == 1;
  }));
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(got[0].first, 0u);
    EXPECT_EQ(got[0].second, msg);
  }
  // Stats: payload bytes only (no frame headers), by kind, both ends.
  a.stop();
  b.stop();
  EXPECT_EQ(a.transport->stats().messages_sent, 1u);
  EXPECT_EQ(a.transport->stats().bytes_sent, msg.size());
  EXPECT_EQ(a.transport->stats().msgs_sent_by_kind[3], 1u);
  EXPECT_EQ(b.transport->stats().messages_delivered, 1u);
  EXPECT_EQ(b.transport->stats().bytes_delivered, msg.size());
  EXPECT_EQ(b.transport->stats().msgs_delivered_by_kind[3], 1u);
  EXPECT_EQ(a.transport->pending_egress_bytes(), 0u);
}

TEST(TcpTransport, SelfSendLoopsBack) {
  TransportNode a(7);
  std::atomic<int> got{0};
  a.transport->set_handler([&](std::uint32_t from, Payload p) {
    EXPECT_EQ(from, 7u);
    EXPECT_EQ(p.size(), 3u);
    ++got;
  });
  a.run();
  a.loop.post([&] { a.transport->send(7, Payload(Bytes{4, 1, 2})); });
  ASSERT_TRUE(eventually(Duration::seconds(2), [&] { return got == 1; }));
  a.stop();
  EXPECT_EQ(a.transport->stats().messages_sent, 1u);
  EXPECT_EQ(a.transport->stats().messages_delivered, 1u);
}

TEST(TcpTransport, ManyFramesArriveInOrder) {
  TransportNode a(0), b(1);
  std::mutex mu;
  std::vector<Bytes> got;
  b.transport->set_handler([&](std::uint32_t, Payload p) {
    std::lock_guard<std::mutex> lock(mu);
    got.push_back(Bytes(p.bytes()));
  });
  a.transport->set_peer(1, Endpoint{"127.0.0.1", b.port});
  a.run();
  b.run();

  constexpr int kFrames = 500;
  a.loop.post([&] {
    for (int i = 0; i < kFrames; ++i) {
      Bytes msg{4};  // vote kind
      msg.push_back(static_cast<std::uint8_t>(i));
      msg.push_back(static_cast<std::uint8_t>(i >> 8));
      msg.resize(3 + static_cast<std::size_t>(i % 97) * 11, 0xab);
      a.transport->send(1, Payload(std::move(msg)));
    }
  });

  ASSERT_TRUE(eventually(Duration::seconds(5), [&] {
    std::lock_guard<std::mutex> lock(mu);
    return got.size() == kFrames;
  }));
  std::lock_guard<std::mutex> lock(mu);
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_EQ(got[i][1], static_cast<std::uint8_t>(i)) << "frame " << i;
    ASSERT_EQ(got[i][2], static_cast<std::uint8_t>(i >> 8)) << "frame " << i;
  }
  a.stop();
  b.stop();
}

// End-of-tick egress coalescing: a burst of sends posted in one loop
// iteration leaves through (far) fewer flushes than frames, and the
// receiver still sees every frame in order.
TEST(TcpTransport, CoalescesBurstIntoFewFlushes) {
  TransportNode a(0), b(1);
  std::mutex mu;
  std::vector<Bytes> got;
  b.transport->set_handler([&](std::uint32_t, Payload p) {
    std::lock_guard<std::mutex> lock(mu);
    got.push_back(Bytes(p.bytes()));
  });
  a.transport->set_peer(1, Endpoint{"127.0.0.1", b.port});
  a.run();
  b.run();

  // Wait for the connection so the burst hits the coalescing (connected)
  // path rather than the pre-connect queue.
  Bytes probe{4, 0xff, 0xff};
  a.loop.post([&] { a.transport->send(1, Payload(probe)); });
  ASSERT_TRUE(eventually(Duration::seconds(5), [&] {
    std::lock_guard<std::mutex> lock(mu);
    return got.size() == 1;
  }));

  constexpr int kFrames = 256;
  a.loop.post([&] {
    for (int i = 0; i < kFrames; ++i) {
      Bytes msg{4};
      msg.push_back(static_cast<std::uint8_t>(i));
      msg.push_back(static_cast<std::uint8_t>(i >> 8));
      a.transport->send(1, Payload(std::move(msg)));
    }
  });
  ASSERT_TRUE(eventually(Duration::seconds(5), [&] {
    std::lock_guard<std::mutex> lock(mu);
    return got.size() == 1 + kFrames;
  }));
  a.stop();
  b.stop();

  // One flush for the probe, then the burst: sendmsg caps at 16 frames per
  // syscall, so 256 frames need >= 16 flush_peer passes — but every one of
  // them came from a single end-of-tick flush cycle, far fewer than 256
  // per-send writes.
  EXPECT_GE(a.transport->flushes(), 1u + kFrames / 16);
  EXPECT_LT(a.transport->flushes(), 1u + kFrames);
  std::lock_guard<std::mutex> lock(mu);
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_EQ(got[i + 1][1], static_cast<std::uint8_t>(i)) << "frame " << i;
    ASSERT_EQ(got[i + 1][2], static_cast<std::uint8_t>(i >> 8));
  }
}

// coalesce_max_defer_bytes=0 must fall back to write-per-send (the escape
// hatch for latency-critical configs) with identical delivery.
TEST(TcpTransport, CoalescingDisabledStillDelivers) {
  TransportConfig tc;
  tc.coalesce_max_defer_bytes = 0;
  TransportNode a(0, tc), b(1);
  std::mutex mu;
  std::size_t got = 0;
  b.transport->set_handler([&](std::uint32_t, Payload) {
    std::lock_guard<std::mutex> lock(mu);
    ++got;
  });
  a.transport->set_peer(1, Endpoint{"127.0.0.1", b.port});
  a.run();
  b.run();
  constexpr int kFrames = 64;
  a.loop.post([&] {
    for (int i = 0; i < kFrames; ++i) {
      a.transport->send(1, Payload(Bytes{4, static_cast<std::uint8_t>(i)}));
    }
  });
  ASSERT_TRUE(eventually(Duration::seconds(5), [&] {
    std::lock_guard<std::mutex> lock(mu);
    return got == kFrames;
  }));
  a.stop();
  b.stop();
}

// Per-wake ingress budgets: with budgets far smaller than the burst, the
// receiver needs many epoll wakes (level-triggered re-fires) but must
// still deliver every frame exactly once, in order.
TEST(TcpTransport, IngressBudgetCutoffResumesNextWake) {
  TransportConfig small;
  small.ingress_budget_bytes = 512;  // a few frames per wake
  small.ingress_budget_frames = 4;
  TransportNode a(0), b(1, small);
  std::mutex mu;
  std::vector<Bytes> got;
  b.transport->set_handler([&](std::uint32_t, Payload p) {
    std::lock_guard<std::mutex> lock(mu);
    got.push_back(Bytes(p.bytes()));
  });
  a.transport->set_peer(1, Endpoint{"127.0.0.1", b.port});
  a.run();
  b.run();

  constexpr int kFrames = 300;
  a.loop.post([&] {
    for (int i = 0; i < kFrames; ++i) {
      Bytes msg{4};
      msg.push_back(static_cast<std::uint8_t>(i));
      msg.push_back(static_cast<std::uint8_t>(i >> 8));
      msg.resize(3 + static_cast<std::size_t>(i % 13) * 7, 0xcd);
      a.transport->send(1, Payload(std::move(msg)));
    }
  });
  ASSERT_TRUE(eventually(Duration::seconds(5), [&] {
    std::lock_guard<std::mutex> lock(mu);
    return got.size() == kFrames;
  }));
  a.stop();
  b.stop();

  {
    std::lock_guard<std::mutex> lock(mu);
    for (int i = 0; i < kFrames; ++i) {
      ASSERT_EQ(got[i][1], static_cast<std::uint8_t>(i)) << "frame " << i;
      ASSERT_EQ(got[i][2], static_cast<std::uint8_t>(i >> 8));
    }
  }
  // The byte budget forced the burst across many wakes: ~15 KB of frames
  // at <= 512 bytes ingested per wake is ~30 wakes even if the kernel
  // buffered the whole burst before the receiver's first read.
  EXPECT_GE(b.transport->ingress_wakes(), 20u);
}

TEST(TcpTransport, ReconnectsAfterReceiverRestart) {
  TransportNode a(0);
  std::atomic<int> got{0};

  std::uint16_t b_port = 0;
  {
    TransportNode b(1);
    b_port = b.port;
    b.transport->set_handler([&](std::uint32_t, Payload) { ++got; });
    a.transport->set_peer(1, Endpoint{"127.0.0.1", b_port});
    a.run();
    b.run();
    a.loop.post([&] { a.transport->send(1, Payload(Bytes{4, 1})); });
    ASSERT_TRUE(eventually(Duration::seconds(5), [&] { return got == 1; }));
    b.stop();  // receiver dies; a's dialed connection breaks
  }

  // New incarnation on the same port (a's endpoint table is unchanged).
  EventLoop loop2;
  TcpTransport b2(loop2, 1);
  {
    // Rebinding an ephemeral port can race another process grabbing it;
    // retry briefly (SO_REUSEADDR covers TIME_WAIT).
    Result<std::uint16_t> p = b2.listen(b_port);
    ASSERT_TRUE(p.is_ok()) << p.status().message();
  }
  b2.set_handler([&](std::uint32_t, Payload) { ++got; });
  std::thread t2([&] { loop2.run(); });

  // Sends queued/dropped while b was down get a new connection: the send
  // below dials afresh (or rides a backoff retry) and must arrive.
  ASSERT_TRUE(eventually(Duration::seconds(8), [&] {
    a.loop.post([&] { a.transport->send(1, Payload(Bytes{4, 2})); });
    return got.load() >= 2;
  }));

  loop2.post([&] {
    b2.shutdown();
    loop2.stop();
  });
  t2.join();
  a.stop();
}

// ---------------------------------------------------------------------------
// VerifyPool: off-loop work, in-order completions
// ---------------------------------------------------------------------------

// Workers race to finish out of order (later submissions sleep less), but
// the loop thread must observe completions in exact submission order —
// that ordering is what lets consensus ingress ride the pool unchanged.
TEST(VerifyPool, CompletionsArriveInSubmissionOrder) {
  EventLoop loop;
  VerifyPool pool(loop, 3);
  std::vector<int> done_order;
  static constexpr int kJobs = 24;

  loop.post([&] {
    for (int i = 0; i < kJobs; ++i) {
      std::function<void()> work;
      if (i % 3 != 0) {  // every third job is a null-work placeholder
        work = [i] {
          std::this_thread::sleep_for(
              std::chrono::microseconds((kJobs - i) * 200));
        };
      }
      pool.submit(std::move(work), [&done_order, &loop, i] {
        done_order.push_back(i);
        if (done_order.size() == kJobs) loop.stop();
      });
    }
  });
  std::thread t([&] { loop.run(); });
  t.join();

  ASSERT_EQ(done_order.size(), static_cast<std::size_t>(kJobs));
  for (int i = 0; i < kJobs; ++i) EXPECT_EQ(done_order[i], i) << "slot " << i;
  EXPECT_EQ(pool.jobs_submitted(), static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(pool.queue_depth(), 0u);
}

// A null-work submit against an idle pool must not detour through a worker
// (that's the zero-overhead client-traffic path).
TEST(VerifyPool, NullWorkOnEmptyQueueRunsInline) {
  EventLoop loop;
  VerifyPool pool(loop, 1);
  bool ran = false;
  loop.post([&] {
    pool.submit(nullptr, [&] { ran = true; });
    EXPECT_TRUE(ran);  // synchronous: still inside the submit call
    loop.stop();
  });
  std::thread t([&] { loop.run(); });
  t.join();
  EXPECT_TRUE(ran);
}

// ---------------------------------------------------------------------------
// RealCluster: commit liveness on localhost TCP
// ---------------------------------------------------------------------------

runtime::ClusterConfig quick_cluster_config(std::uint32_t f) {
  runtime::ClusterConfig cfg;
  cfg.f = f;
  cfg.seed = 7;
  cfg.clients.count = 2;
  cfg.clients.window = 8;
  cfg.clients.payload_size = 32;
  cfg.consensus.pacemaker.base_timeout = Duration::millis(500);
  cfg.consensus.pacemaker.timeout_jitter = 0.2;
  return cfg;
}

TEST(RealCluster, CommitsClientOpsOverTcp) {
  RealCluster cluster(quick_cluster_config(1));
  ASSERT_TRUE(cluster.ok().is_ok()) << cluster.ok().message();
  cluster.start();
  ASSERT_TRUE(eventually(Duration::seconds(20), [&] {
    return cluster.client(0).completed().total() > 50 &&
           cluster.client(1).completed().total() > 50;
  }));
  cluster.stop();

  EXPECT_FALSE(cluster.any_safety_violation());
  EXPECT_TRUE(cluster.committed_heights_consistent());
  EXPECT_GT(cluster.min_committed_height(), 0u);
  // Every replica moved real bytes on the wire.
  for (std::uint32_t i = 0; i < cluster.n(); ++i) {
    EXPECT_GT(cluster.node_stats(i).bytes_delivered, 0u) << "replica " << i;
  }
}

TEST(RealCluster, CleanShutdownDrainsEgress) {
  RealCluster cluster(quick_cluster_config(1));
  ASSERT_TRUE(cluster.ok().is_ok());
  cluster.start();
  ASSERT_TRUE(eventually(Duration::seconds(20), [&] {
    return cluster.total_completed() > 20;
  }));
  cluster.stop();
  // Drain-on-shutdown: no node may strand queued frames.
  for (std::uint32_t id = 0; id < cluster.n(); ++id) {
    EXPECT_EQ(cluster.transport(id).pending_egress_bytes(), 0u)
        << "node " << id;
  }
}

TEST(RealCluster, TracesRecordCommitsAndDeliveries) {
  runtime::ClusterConfig cfg = quick_cluster_config(1);
  RealClusterOptions opts;
  opts.trace = true;
  RealCluster cluster(cfg, opts);
  ASSERT_TRUE(cluster.ok().is_ok());
  cluster.start();
  ASSERT_TRUE(eventually(Duration::seconds(20), [&] {
    return cluster.total_completed() > 10;
  }));
  cluster.stop();

  const auto events = cluster.merged_trace_events();
  ASSERT_FALSE(events.empty());
  bool saw_commit = false, saw_delivery = false, saw_reply = false;
  for (const auto& e : events) {
    saw_commit |= e.type == obs::EventType::kCommit;
    saw_delivery |= e.type == obs::EventType::kMsgDelivered;
    saw_reply |= e.type == obs::EventType::kReplyAccepted;
  }
  EXPECT_TRUE(saw_commit);
  EXPECT_TRUE(saw_delivery);
  EXPECT_TRUE(saw_reply);
  // Merged events are time-sorted.
  for (std::size_t i = 1; i < events.size(); ++i) {
    ASSERT_LE(events[i - 1].at.as_nanos(), events[i].at.as_nanos());
  }
}

// ---------------------------------------------------------------------------
// RealCluster: kill + relaunch over a durable store
// ---------------------------------------------------------------------------

TEST(RealCluster, KilledReplicaRelaunchesFromDiskAndRejoins) {
  const std::string dir = "/tmp/marlin_realnet_relaunch_test";
  std::filesystem::remove_all(dir);

  runtime::ClusterConfig cfg = quick_cluster_config(1);
  RealClusterOptions opts;
  opts.data_dir = dir;
  RealCluster cluster(cfg, opts);
  ASSERT_TRUE(cluster.ok().is_ok()) << cluster.ok().message();
  cluster.start();

  // Let the cluster commit, then hard-kill a non-leader replica.
  ASSERT_TRUE(eventually(Duration::seconds(20), [&] {
    return cluster.total_completed() > 30;
  }));
  cluster.kill_replica(2);
  EXPECT_FALSE(cluster.replica_alive(2));

  // n=4 tolerates one crash: progress must continue while 2 is down.
  const std::uint64_t before = cluster.total_completed();
  ASSERT_TRUE(eventually(Duration::seconds(20), [&] {
    return cluster.total_completed() > before + 30;
  }));

  // Relaunch over the surviving data dir: the new incarnation must restore
  // the persisted consensus state (write-ahead voting record) and rejoin.
  ASSERT_TRUE(cluster.relaunch_replica(2).is_ok());
  EXPECT_TRUE(cluster.replica_alive(2));
  EXPECT_TRUE(cluster.replica(2).recovered());

  // The relaunched replica catches up over TCP: its committed height must
  // start advancing again (fetch/catch-up runs over the same transport).
  ASSERT_TRUE(eventually(Duration::seconds(30), [&] {
    return cluster.replica(2).protocol().committed_height() > 0;
  }));

  cluster.stop();
  EXPECT_FALSE(cluster.any_safety_violation());
  EXPECT_TRUE(cluster.committed_heights_consistent());
  std::filesystem::remove_all(dir);
}

double scraped_metric(std::uint16_t port, const std::string& series);

// With the verify pool enabled, ingress crypto pre-verification runs on
// worker threads; the cluster must still commit, survive a hard kill +
// relaunch (pool torn down and rebuilt with the node), and stay
// consistent. This is the loop/pool boundary test the sanitizer jobs run.
TEST(RealCluster, CommitsAndRelaunchesWithVerifyPool) {
  const std::string dir = "/tmp/marlin_realnet_verify_pool_test";
  std::filesystem::remove_all(dir);

  runtime::ClusterConfig cfg = quick_cluster_config(1);
  RealClusterOptions opts;
  opts.data_dir = dir;
  opts.verify_workers = 2;
  opts.telemetry = true;
  RealCluster cluster(cfg, opts);
  ASSERT_TRUE(cluster.ok().is_ok()) << cluster.ok().message();
  cluster.start();

  ASSERT_TRUE(eventually(Duration::seconds(20), [&] {
    return cluster.total_completed() > 30;
  }));
  // Pool series are live on /metrics: the job counter climbed, and the
  // queue-depth gauge is present (exact depth is timing-dependent).
  const std::uint16_t port0 = cluster.telemetry_port(0);
  ASSERT_NE(port0, 0);
  EXPECT_GE(scraped_metric(port0, "marlin_verify_pool_jobs"), 1.0);
  EXPECT_GE(scraped_metric(port0, "marlin_verify_pool_queue_depth"), 0.0);
  EXPECT_GE(scraped_metric(port0, "marlin_verify_pool_workers"), 2.0);
  EXPECT_GT(scraped_metric(port0, "marlin_verify_pool_verify_ns_count"), 0.0);
  cluster.kill_replica(2);
  const std::uint64_t before = cluster.total_completed();
  ASSERT_TRUE(eventually(Duration::seconds(20), [&] {
    return cluster.total_completed() > before + 30;
  }));
  ASSERT_TRUE(cluster.relaunch_replica(2).is_ok());
  ASSERT_TRUE(eventually(Duration::seconds(30), [&] {
    return cluster.replica(2).protocol().committed_height() > 0;
  }));

  cluster.stop();
  EXPECT_FALSE(cluster.any_safety_violation());
  EXPECT_TRUE(cluster.committed_heights_consistent());
  // The pool actually saw traffic, and its metrics flow through snapshots.
  obs::MetricsRegistry snap = cluster.replica(0).snapshot_metrics();
  EXPECT_GT(snap.counter("verify_pool.jobs"), 0u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Telemetry plane observes transport faults from outside the process
// ---------------------------------------------------------------------------

// Scrape helper: GET /metrics and pull one series value out of the
// Prometheus text (exact-name match at line start, value after the space).
double scraped_metric(std::uint16_t port, const std::string& series) {
  auto resp =
      http_get("127.0.0.1", port, "/metrics", Duration::seconds(2));
  if (!resp.is_ok() || resp.value().status_code != 200) return -1;
  const std::string& body = resp.value().body;
  const std::string needle = series + " ";
  std::size_t pos = body.find(needle);
  while (pos != std::string::npos && pos != 0 && body[pos - 1] != '\n') {
    pos = body.find(needle, pos + 1);
  }
  if (pos == std::string::npos) return -1;
  return std::atof(body.c_str() + pos + needle.size());
}

TEST(RealCluster, ScrapedMetricsObserveKilledPeerAndReconnect) {
  runtime::ClusterConfig cfg = quick_cluster_config(1);
  RealClusterOptions opts;
  opts.telemetry = true;
  RealCluster cluster(cfg, opts);
  ASSERT_TRUE(cluster.ok().is_ok()) << cluster.ok().message();
  cluster.start();

  ASSERT_TRUE(eventually(Duration::seconds(20), [&] {
    return cluster.total_completed() > 30;
  }));
  const std::uint16_t port0 = cluster.telemetry_port(0);
  ASSERT_NE(port0, 0);

  // Baseline scrape of replica 0: the transport health series exist and
  // the egress queue high-water mark shows frames actually queued.
  EXPECT_GE(scraped_metric(port0, "marlin_transport_connects_ok"), 1.0);
  EXPECT_GT(scraped_metric(port0,
                           "marlin_transport_egress_high_water_bytes"),
            0.0);
  // Hot-path series pinned here so renames break a test, not a dashboard:
  // egress coalescing, batched ingress decode, and their batch-size
  // summaries all flow through /metrics on a live replica.
  EXPECT_GE(scraped_metric(port0, "marlin_transport_flushes"), 1.0);
  EXPECT_GE(scraped_metric(port0, "marlin_transport_ingress_wakes"), 1.0);
  EXPECT_GT(scraped_metric(port0, "marlin_transport_frames_per_flush_count"),
            0.0);
  EXPECT_GT(scraped_metric(port0, "marlin_loop_frames_per_wake_count"), 0.0);

  // Kill replica 2. Marlin's linearity means followers only talk to the
  // leader, so replica 2's death is invisible to most transports — but the
  // leader broadcasts proposals to everyone and must observe the stream
  // reset plus redial/backoff churn. Scrape every survivor and find it.
  cluster.kill_replica(2);
  const std::uint32_t survivors[] = {0, 1, 3};
  auto observer = [&]() -> std::uint16_t {
    for (std::uint32_t i : survivors) {
      const std::uint16_t p = cluster.telemetry_port(i);
      if (scraped_metric(p, "marlin_transport_connections_lost") >= 1.0 &&
          scraped_metric(p, "marlin_transport_redials_scheduled") >= 1.0) {
        return p;
      }
    }
    return 0;
  };
  ASSERT_TRUE(eventually(Duration::seconds(15),
                         [&] { return observer() != 0; }))
      << "no survivor observed the lost connection";
  const std::uint16_t leader_port = observer();

  // Redials to the dead peer keep failing: the failure counter climbs.
  ASSERT_TRUE(eventually(Duration::seconds(15), [&] {
    return scraped_metric(leader_port, "marlin_transport_connect_failures") >=
           1.0;
  }));

  // /status agrees: peer 2 shows disconnected on the observer's peer table.
  auto status =
      http_get("127.0.0.1", leader_port, "/status", Duration::seconds(2));
  ASSERT_TRUE(status.is_ok());
  EXPECT_NE(
      status.value().body.find(
          "{\"id\":2,\"connected\":false"),
      std::string::npos)
      << status.value().body;

  cluster.stop();
  EXPECT_FALSE(cluster.any_safety_violation());
}

}  // namespace
}  // namespace marlin::realnet
