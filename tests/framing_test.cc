// Tests for the shared wire codec (common/wire_codec): kind classification,
// length-prefix framing, hello frames, and the incremental FrameDecoder that
// both the simnet byte-charging path and the real TCP transport rely on.
// Includes a deterministic fuzz-ish round-trip: random frame batches are
// re-chunked at every possible boundary pattern and must reassemble exactly.
#include <gtest/gtest.h>

#include <cstring>

#include "common/json.h"
#include "common/rng.h"
#include "common/wire_codec.h"

namespace marlin::wire {
namespace {

Bytes make_payload(Rng& rng, std::size_t size) {
  Bytes out(size);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_below(256));
  return out;
}

// ---------------------------------------------------------------------------
// Kind classification (shared with simnet per-kind stats)
// ---------------------------------------------------------------------------

TEST(WireCodec, KindSlotMapsWireKindByte) {
  EXPECT_EQ(kind_slot(BytesView{}), 0u);  // empty → unknown
  Bytes p{3, 0xaa};                       // kProposal
  EXPECT_EQ(kind_slot(BytesView(p.data(), p.size())), 3u);
  Bytes v{4};
  EXPECT_EQ(kind_slot(BytesView(v.data(), v.size())), 4u);
  Bytes oob{200};  // out-of-range kind byte → unknown slot
  EXPECT_EQ(kind_slot(BytesView(oob.data(), oob.size())), 0u);
}

TEST(WireCodec, KindSlotNamesMatchSimnetPins) {
  // These names are pinned by golden traces and metric labels; changing
  // them breaks the observability contract shared by both transports.
  EXPECT_EQ(kind_slot_name(0), "unknown");
  EXPECT_EQ(kind_slot_name(1), "client_request");
  EXPECT_EQ(kind_slot_name(2), "client_reply");
  EXPECT_EQ(kind_slot_name(3), "proposal");
  EXPECT_EQ(kind_slot_name(4), "vote");
  EXPECT_EQ(kind_slot_name(5), "qc_notice");
  EXPECT_EQ(kind_slot_name(6), "view_change");
  EXPECT_EQ(kind_slot_name(7), "fetch_request");
  EXPECT_EQ(kind_slot_name(8), "fetch_response");
  EXPECT_EQ(kind_slot_name(9), "snapshot_request");
  EXPECT_EQ(kind_slot_name(10), "snapshot_response");
  EXPECT_EQ(kind_slot_name(99), "unknown");  // clamped
}

// ---------------------------------------------------------------------------
// Header / frame encoding
// ---------------------------------------------------------------------------

TEST(WireCodec, HeaderIsLittleEndianU32) {
  const auto h = encode_header(0x01020304u);
  EXPECT_EQ(h[0], 0x04);
  EXPECT_EQ(h[1], 0x03);
  EXPECT_EQ(h[2], 0x02);
  EXPECT_EQ(h[3], 0x01);
}

TEST(WireCodec, AppendFramePrefixesLength) {
  Bytes out;
  Bytes payload{9, 1, 2, 3};
  append_frame(out, BytesView(payload.data(), payload.size()));
  ASSERT_EQ(out.size(), kHeaderSize + payload.size());
  EXPECT_EQ(out[0], 4);  // length LSB
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[4], 9);  // kind byte follows the header
}

TEST(WireCodec, HelloRoundTrip) {
  const Bytes hello = hello_payload(0xdeadbeefu);
  std::uint32_t id = 0;
  ASSERT_TRUE(parse_hello(BytesView(hello.data(), hello.size()), &id));
  EXPECT_EQ(id, 0xdeadbeefu);

  Bytes not_hello{3, 1, 2, 3, 4};
  EXPECT_FALSE(parse_hello(BytesView(not_hello.data(), not_hello.size()), &id));
  Bytes short_hello{kHelloKind, 1};
  EXPECT_FALSE(
      parse_hello(BytesView(short_hello.data(), short_hello.size()), &id));
}

// ---------------------------------------------------------------------------
// FrameDecoder: reassembly
// ---------------------------------------------------------------------------

TEST(FrameDecoder, SingleFrameRoundTrip) {
  Bytes stream;
  Bytes payload{4, 10, 20, 30};
  append_frame(stream, BytesView(payload.data(), payload.size()));

  FrameDecoder dec;
  ASSERT_TRUE(dec.feed(BytesView(stream.data(), stream.size())).is_ok());
  Bytes frame;
  ASSERT_TRUE(dec.next(frame));
  EXPECT_EQ(frame, payload);
  EXPECT_FALSE(dec.next(frame));
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameDecoder, EmptyPayloadFrame) {
  Bytes stream;
  append_frame(stream, BytesView{});
  FrameDecoder dec;
  ASSERT_TRUE(dec.feed(BytesView(stream.data(), stream.size())).is_ok());
  Bytes frame{1, 2, 3};  // must be overwritten with empty
  ASSERT_TRUE(dec.next(frame));
  EXPECT_TRUE(frame.empty());
}

TEST(FrameDecoder, PartialReadReassembly) {
  // Feed a frame one byte at a time; it must only complete at the end.
  Bytes stream;
  Bytes payload{5, 7, 7, 7, 7, 7};
  append_frame(stream, BytesView(payload.data(), payload.size()));

  FrameDecoder dec;
  Bytes frame;
  for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
    ASSERT_TRUE(dec.feed(BytesView(stream.data() + i, 1)).is_ok());
    EXPECT_FALSE(dec.next(frame)) << "completed early at byte " << i;
  }
  ASSERT_TRUE(dec.feed(BytesView(stream.data() + stream.size() - 1, 1)).is_ok());
  ASSERT_TRUE(dec.next(frame));
  EXPECT_EQ(frame, payload);
}

TEST(FrameDecoder, TruncatedFrameStaysPending) {
  Bytes stream;
  Bytes payload = {3};
  payload.resize(100, 0x5a);
  append_frame(stream, BytesView(payload.data(), payload.size()));
  stream.resize(stream.size() - 1);  // drop the last byte

  FrameDecoder dec;
  ASSERT_TRUE(dec.feed(BytesView(stream.data(), stream.size())).is_ok());
  Bytes frame;
  EXPECT_FALSE(dec.next(frame));
  EXPECT_GT(dec.buffered(), 0u);  // bytes retained, waiting for the rest
}

TEST(FrameDecoder, OversizeDeclarationPoisons) {
  FrameDecoder dec(/*max_payload=*/1024);
  const auto header = encode_header(1025);
  Bytes stream(header.begin(), header.end());
  const Status s = dec.feed(BytesView(stream.data(), stream.size()));
  EXPECT_FALSE(s.is_ok());
  EXPECT_TRUE(dec.poisoned());
  // A poisoned decoder never yields frames and rejects further input.
  Bytes frame;
  EXPECT_FALSE(dec.next(frame));
  Bytes more{1, 2, 3};
  EXPECT_FALSE(dec.feed(BytesView(more.data(), more.size())).is_ok());
}

TEST(FrameDecoder, OversizeDetectedEvenWhenHeaderArrivesInPieces) {
  FrameDecoder dec(/*max_payload=*/16);
  const auto header = encode_header(1u << 20);
  // First two header bytes: not enough to validate yet.
  Bytes part1(header.begin(), header.begin() + 2);
  ASSERT_TRUE(dec.feed(BytesView(part1.data(), part1.size())).is_ok());
  EXPECT_FALSE(dec.poisoned());
  Bytes part2(header.begin() + 2, header.end());
  EXPECT_FALSE(dec.feed(BytesView(part2.data(), part2.size())).is_ok());
  EXPECT_TRUE(dec.poisoned());
}

TEST(FrameDecoder, BackToBackFramesInOneChunk) {
  Bytes stream;
  Bytes a{1, 0xaa};
  Bytes b{4, 0xbb, 0xcc};
  Bytes c{2};
  append_frame(stream, BytesView(a.data(), a.size()));
  append_frame(stream, BytesView(b.data(), b.size()));
  append_frame(stream, BytesView(c.data(), c.size()));

  FrameDecoder dec;
  ASSERT_TRUE(dec.feed(BytesView(stream.data(), stream.size())).is_ok());
  Bytes frame;
  ASSERT_TRUE(dec.next(frame));
  EXPECT_EQ(frame, a);
  ASSERT_TRUE(dec.next(frame));
  EXPECT_EQ(frame, b);
  ASSERT_TRUE(dec.next(frame));
  EXPECT_EQ(frame, c);
  EXPECT_FALSE(dec.next(frame));
}

// Deterministic fuzz: random frame batches, re-chunked with random split
// points, interleaving feed() and next() — decoded frames must equal the
// originals in order, every time.
TEST(FrameDecoder, RandomizedChunkingRoundTrip) {
  Rng rng(0xf5a31ull);
  for (int round = 0; round < 200; ++round) {
    const std::size_t nframes = 1 + rng.next_below(8);
    std::vector<Bytes> frames;
    Bytes stream;
    for (std::size_t i = 0; i < nframes; ++i) {
      // Mix tiny and multi-KiB payloads so splits land inside headers,
      // inside bodies, and exactly on frame boundaries.
      const std::size_t size =
          rng.next_bool(0.3) ? rng.next_below(4)
                             : rng.next_below(4096);
      frames.push_back(make_payload(rng, size));
      append_frame(stream, BytesView(frames.back().data(), frames.back().size()));
    }

    FrameDecoder dec;
    std::vector<Bytes> decoded;
    std::size_t off = 0;
    Bytes frame;
    while (off < stream.size()) {
      const std::size_t chunk =
          1 + rng.next_below(std::min<std::uint64_t>(stream.size() - off, 977));
      ASSERT_TRUE(dec.feed(BytesView(stream.data() + off, chunk)).is_ok());
      off += chunk;
      if (rng.next_bool(0.7)) {
        while (dec.next(frame)) decoded.push_back(frame);
      }
    }
    while (dec.next(frame)) decoded.push_back(frame);

    ASSERT_EQ(decoded.size(), frames.size()) << "round " << round;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(decoded[i], frames[i]) << "round " << round << " frame " << i;
    }
    EXPECT_EQ(dec.buffered(), 0u);
  }
}

// Long-lived connection: the decoder must not accrete consumed bytes.
TEST(FrameDecoder, CompactsConsumedPrefix) {
  Rng rng(7);
  FrameDecoder dec;
  Bytes frame;
  for (int i = 0; i < 2000; ++i) {
    Bytes payload = make_payload(rng, 512);
    Bytes stream;
    append_frame(stream, BytesView(payload.data(), payload.size()));
    ASSERT_TRUE(dec.feed(BytesView(stream.data(), stream.size())).is_ok());
    ASSERT_TRUE(dec.next(frame));
    ASSERT_EQ(frame, payload);
  }
  // ~1 MiB passed through; retained buffer must stay bounded (well under
  // the 64 KiB compaction threshold plus one frame).
  EXPECT_LT(dec.buffered(), (80u << 10));
}

// ---------------------------------------------------------------------------
// common/json — the extracted document parser (shared by fault plans and
// cluster configs) keeps its error behaviour.
// ---------------------------------------------------------------------------

TEST(Json, ParsesDocument) {
  auto doc = json::parse(R"({"n": 4, "name": "x", "flags": [true, null]})");
  ASSERT_TRUE(doc.is_ok());
  const json::Object* o = doc.value().object();
  ASSERT_NE(o, nullptr);
  EXPECT_EQ(json::get_num(*o, "n", 0), 4.0);
  EXPECT_EQ(json::get_str(*o, "name", ""), "x");
  ASSERT_NE(o->find("flags"), o->end());
  EXPECT_NE(o->at("flags").array(), nullptr);
}

TEST(Json, MalformedDocumentsReportBytePosition) {
  for (const char* bad : {"{", "[1,]", "{\"a\":}", "tru", "\"unterminated",
                          "{} trailing"}) {
    auto doc = json::parse(bad);
    EXPECT_FALSE(doc.is_ok()) << bad;
    EXPECT_NE(doc.status().message().find("at byte"), std::string::npos) << bad;
  }
}

TEST(Json, TypedAccessorsFallBackOnTypeMismatch) {
  auto doc = json::parse(R"({"s": "str", "n": 3, "b": true, "o": {"k": 1}})");
  ASSERT_TRUE(doc.is_ok());
  const json::Object& o = *doc.value().object();
  EXPECT_EQ(json::get_num(o, "s", -1.0), -1.0);   // string, not number
  EXPECT_EQ(json::get_str(o, "n", "dflt"), "dflt");
  EXPECT_TRUE(json::get_bool(o, "missing", true));
  EXPECT_FALSE(json::get_bool(o, "n", false));
  ASSERT_NE(json::get_object(o, "o"), nullptr);
  EXPECT_EQ(json::get_object(o, "s"), nullptr);
}

}  // namespace
}  // namespace marlin::wire
